#!/usr/bin/env python
"""Batched I/O layer benchmark harness: extent reads, wave gathers, pools.

Writes ``BENCH_io.json`` with four sections:

* ``microbench`` — the storage primitives head to head: sequential
  ``PageStore.read`` loops vs ``read_many`` batch gathers (cold and
  warm pools), plus the striped pool's batched charging
  (``get_pages``) vs the per-page loop;
* ``build`` — ST-Index construction write amplification: page writes
  charged by the group-committed build against the packed-page floor
  ``ceil(bytes / page_size)`` (the pre-fix behavior charged ~one write
  per *record*);
* ``fig41_sweep`` — a Fig 4.1(a)-style duration sweep of end-to-end
  ``sqmb_tbs`` queries, batched I/O + columnar kernel vs the preserved
  scalar probability/read path;
* ``batch_throughput`` — ``QueryService.run_batch`` over the mixed
  workload of ``bench_probability.py`` (same protocol as the PR 4
  baseline, whose committed full-mode figure was 248.1 q/s), with
  queries/s and the speedup over that baseline;
* ``cold_start`` — the durable tier's reopen path: ``save_store`` once,
  then time ``open_store`` (superblock + sidecar verify, journal
  replay, lazy page map — no page payloads read) and the first cold
  batch against it, reporting the fraction of pages actually faulted
  and the warm/cold throughput ratio.

Every end-to-end comparison asserts result sets and page-read
accounting are identical between the batched and scalar paths — the
randomized equivalence proof lives in ``tests/test_batched_io.py`` and
``tests/test_prob_kernel.py``; the benchmark only measures.

Usage::

    PYTHONPATH=src python benchmarks/bench_io.py [--quick] [--out PATH]

``--quick`` uses the reduced dataset and fewer repetitions — the CI smoke
configuration.  Every section reports the median of ``repeat`` runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.engine import ReachabilityEngine
from repro.datasets.shenzhen_like import default_dataset
from repro.eval import config
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_probability import (  # noqa: E402
    bench_batch_throughput,
    bench_fig41_sweep,
    median_ms,
    paired_median_ms,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The PR 4 full-mode ``queries_per_s_kernel`` committed in
#: ``BENCH_probability.json`` — the baseline the ISSUE 5 acceptance
#: criterion (>= 1.5x ``run_batch`` throughput) is measured against.
PR4_BASELINE_QPS = 248.1


def bench_micro(repeat: int) -> list[dict]:
    """Storage primitives: scalar read loops vs batched gathers."""
    rng = random.Random(42)
    page_size = 1024
    payloads = [
        bytes(rng.randrange(256) for _ in range(rng.randrange(100, 1200)))
        for _ in range(400)
    ]

    def fresh(capacity: int):
        disk = SimulatedDisk(page_size=page_size)
        store = PageStore(disk)
        pointers = [store.append(p) for p in payloads]
        store.flush()
        pool = BufferPool(disk, capacity=capacity) if capacity else None
        return store, pool, pointers

    accesses = [rng.randrange(len(payloads)) for _ in range(2000)]
    rows: list[dict] = []

    def row(name, batched_fn, scalar_fn, extra=None):
        batched_ms, scalar_ms = paired_median_ms(batched_fn, scalar_fn, repeat)
        entry = {
            "name": name,
            "batched_ms": round(batched_ms, 3),
            "scalar_ms": round(scalar_ms, 3),
            "speedup": round(scalar_ms / batched_ms, 2) if batched_ms > 0 else None,
        }
        if extra:
            entry.update(extra)
        rows.append(entry)

    store, pool, pointers = fresh(capacity=512)
    wave = [pointers[i] for i in accesses]
    row(
        f"record gather x{len(accesses)} (warm pool)",
        lambda: store.read_many(wave, pool=pool),
        lambda: [store.read(ptr, pool=pool) for ptr in wave],
        extra={"records": len(accesses)},
    )
    store2, _, pointers2 = fresh(capacity=0)
    wave2 = [pointers2[i] for i in accesses]
    row(
        f"record gather x{len(accesses)} (no pool, direct disk)",
        lambda: store2.read_many(wave2),
        lambda: [store2.read(ptr) for ptr in wave2],
    )
    page_ids = [ptr.first_page for ptr in wave]
    row(
        f"pool charge x{len(page_ids)} (get_pages vs get_page loop)",
        lambda: pool.get_pages(page_ids),
        lambda: [pool.get_page(page) for page in page_ids],
    )
    return rows


def bench_build(engine, settings, repeat: int) -> dict:
    """ST-Index build write amplification under the group commit."""
    from repro.core.st_index import STIndex

    def build():
        index = STIndex(engine.network, settings.delta_t_s)
        index.build(engine.database)
        return index

    build_ms = median_ms(build, repeat)
    index = build()
    stats = index.disk.stats
    floor = -(-stats.bytes_written // index.disk.page_size)
    return {
        "build_ms": round(build_ms, 1),
        "entries": index.stats.num_entries,
        "bytes_written": stats.bytes_written,
        "page_writes": stats.page_writes,
        "packed_page_floor": floor,
        "write_amplification": round(stats.page_writes / floor, 3),
        "legacy_write_amplification_approx": round(
            index.stats.num_entries / floor, 2
        ),
    }


def bench_cold_start(engine, settings, batch_size: int, repeat: int) -> dict:
    """Durable-store cold start: open_store + first batch vs warm RAM."""
    import tempfile

    from repro.core.service import QueryService
    from repro.eval.workload import QueryWorkload
    from repro.io.persist import open_store, save_store
    from repro.storage.backends import FileBackedDisk

    workload = QueryWorkload(engine.network, seed=23)
    batch = workload.mixed_batch(
        batch_size, max(1, batch_size // 4), start_time_s=settings.start_time_s
    )

    def run_warm():
        service = QueryService(engine, delta_t_s=settings.delta_t_s)
        return service.run_batch(batch, delta_t_s=settings.delta_t_s)

    run_warm()  # ensure the ST-Index (and con-index entries) exist
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        save_started = time.perf_counter()
        save_store(engine, store, settings.delta_t_s)
        save_ms = (time.perf_counter() - save_started) * 1e3

        open_ms = median_ms(lambda: open_store(store), repeat)

        def run_cold():
            reopened = open_store(store)
            service = QueryService(reopened, delta_t_s=settings.delta_t_s)
            report = service.run_batch(batch, delta_t_s=settings.delta_t_s)
            return reopened.disk, report

        cold_ms = median_ms(run_cold, repeat)
        warm_ms = median_ms(run_warm, repeat)
        disk, cold_report = run_cold()
        assert isinstance(disk, FileBackedDisk)
        warm_report = run_warm()
        assert [r.segments for r in cold_report.results] == [
            r.segments for r in warm_report.results
        ], "cold store changed results"

    return {
        "store_pages": disk.num_pages,
        "page_size": disk.page_size,
        "save_ms": round(save_ms, 1),
        "open_ms": round(open_ms, 3),
        "batch_queries": len(batch),
        "cold_batch_ms": round(cold_ms, 3),
        "warm_batch_ms": round(warm_ms, 3),
        "cold_over_warm": round(cold_ms / warm_ms, 2) if warm_ms > 0 else None,
        "pages_faulted": disk.pages_faulted,
        "faulted_fraction": round(disk.pages_faulted / disk.num_pages, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced dataset and repetitions (CI smoke configuration)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_io.json",
        help="output JSON path (default: repo-root BENCH_io.json)",
    )
    args = parser.parse_args()
    settings = config.SMALL_SETTINGS if args.quick else config.DEFAULT_SETTINGS
    repeat = 3 if args.quick else 9
    durations = (300, 600, 900) if args.quick else (300, 600, 900, 1200, 1500)
    batch_size = 8 if args.quick else 16

    started = time.perf_counter()
    print(f"building dataset ({'quick' if args.quick else 'full'}) ...")
    dataset = default_dataset(settings.dataset)
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(settings.delta_t_s)
    print(f"dataset ready in {time.perf_counter() - started:.1f}s; benchmarking ...")

    micro = bench_micro(repeat)
    build = bench_build(engine, settings, max(1, repeat // 3))
    sweep = bench_fig41_sweep(engine, settings, durations, repeat)
    throughput = bench_batch_throughput(engine, settings, batch_size, repeat)
    cold_start = bench_cold_start(
        engine, settings, batch_size, max(1, repeat // 3)
    )
    if not args.quick:
        # The PR 4 baseline was measured in the full configuration (large
        # dataset, batch of 20); comparing quick-mode numbers against it
        # would be meaningless, so the ratio is only emitted in full mode.
        throughput["pr4_baseline_queries_per_s"] = PR4_BASELINE_QPS
        throughput["speedup_vs_pr4_baseline"] = round(
            throughput["queries_per_s_kernel"] / PR4_BASELINE_QPS, 2
        )

    report = {
        "benchmark": (
            "batched zero-copy I/O layer: extent page store, wave gathers, "
            "striped single-flight buffer pool"
        ),
        "mode": "quick" if args.quick else "full",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "dataset": {
            "segments": engine.network.num_segments,
            "trajectories": len(engine.database),
            "delta_t_s": settings.delta_t_s,
        },
        "microbench": micro,
        "build": build,
        "fig41_sweep": sweep,
        "batch_throughput": throughput,
        "cold_start": cold_start,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
