"""Fig 4.2: Prob-reachable region maps for L = 5 and 10 minutes.

The paper shows Leaflet screenshots; we render ASCII maps and export
GeoJSON.  Expected shape: the L = 10 region strictly contains the L = 5
region and stretches farther along the primary arterials than along local
roads.
"""

from pathlib import Path

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.network.model import RoadLevel
from repro.viz.ascii_map import render_region
from repro.viz.geojson import write_geojson

RESULTS = Path(__file__).parent / "results"


def _query(minutes: int) -> SQuery:
    return SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        minutes * 60,
        0.2,
    )


def test_fig42_region_maps(bench_client, bench_dataset, benchmark, emit):
    small = s_query(bench_client, _query(5))
    large = benchmark(lambda: s_query(bench_client, _query(10)))
    art = []
    for minutes, result in ((5, small), (10, large)):
        art.append(f"Fig 4.2 — Prob=20%, L={minutes} min "
                   f"({len(result.segments)} segments)")
        art.append(render_region(result, bench_dataset.network))
        RESULTS.mkdir(exist_ok=True)
        write_geojson(
            result, bench_dataset.network,
            RESULTS / f"fig42_L{minutes}.geojson",
        )
    emit("fig42_maps", "\n".join(art))
    # Monotone containment in road space.
    small_roads = {
        bench_dataset.network.segment(s).canonical_id() for s in small.segments
    }
    large_roads = {
        bench_dataset.network.segment(s).canonical_id() for s in large.segments
    }
    assert small_roads <= large_roads
    # Primary reach exceeds secondary reach (highway elongation).
    def max_distance(result, level):
        distances = [
            bench_dataset.network.segment(s).midpoint.distance_to(
                config.CENTER_LOCATION
            )
            for s in result.segments
            if bench_dataset.network.segment(s).level == level
        ]
        return max(distances, default=0.0)

    assert max_distance(large, RoadLevel.PRIMARY) >= max_distance(
        large, RoadLevel.SECONDARY
    )
