"""Fig 4.8: m-query (MQMB+TBS) vs repeated s-query (SQMB+TBS x N).

(a) 3 locations, running time over duration L — m-query consistently
    cheaper, up to ~70% at L = 35 min in the paper;
(b) running time over the number of locations (T = 10:00, L = 20 min) —
    s-query cost grows linearly with N, m-query stays near-constant
    (up to ~90% saving at 9 locations in the paper); with a single
    location the two coincide.
"""

import pytest

from client_protocol import m_query
from repro.core.query import MQuery
from repro.eval import config
from repro.eval.runner import run_location_count_sweep, run_mquery_duration_sweep
from repro.eval.tables import format_series
from repro.trajectory.model import day_time


@pytest.fixture(scope="module")
def duration_sweep(bench_engine, emit):
    points = run_mquery_duration_sweep(
        bench_engine,
        config.M_QUERY_LOCATIONS[:3],
        config.DURATIONS_S,
        config.DEFAULT_SETTINGS.start_time_s,
        prob=0.2,
    )
    emit(
        "fig48a_duration",
        format_series(
            "Fig 4.8(a) — m-query vs 3x s-query running time (ms) over L",
            points, metric="running_time_ms", x_name="L (min)",
        ),
    )
    return points


@pytest.fixture(scope="module")
def count_sweep(bench_engine, emit):
    points = run_location_count_sweep(
        bench_engine,
        config.M_QUERY_LOCATIONS,
        config.LOCATION_COUNTS,
        day_time(10),
        duration_s=1200,
        prob=0.2,
    )
    emit(
        "fig48b_locations",
        format_series(
            "Fig 4.8(b) — m-query vs s-query running time (ms) over #locations",
            points, metric="running_time_ms", x_name="#locs",
        ),
    )
    return points


def test_fig48a_mquery_wins_at_every_duration(duration_sweep):
    ours = {p.x: p for p in duration_sweep if p.label == "m-query"}
    naive = {p.x: p for p in duration_sweep if p.label == "s-query"}
    for minutes in ours:
        # The decisive, deterministic term: MQMB never costs more I/O
        # than the per-location baseline.
        assert ours[minutes].io_ms <= naive[minutes].io_ms
        if minutes >= 10:
            # Regions overlap from L=10min on and the shared expansion
            # wins outright, wall time included.
            assert (
                ours[minutes].running_time_ms
                <= naive[minutes].running_time_ms
            )
        else:
            # At L=5min the three regions are still disjoint, the I/O
            # ties exactly, and the total differs only by ~ms-scale wall
            # noise — allow 5% on top of the strict I/O bound.
            assert (
                ours[minutes].running_time_ms
                <= 1.05 * naive[minutes].running_time_ms
            )


def test_fig48b_linear_vs_constant(count_sweep):
    ours = {p.x: p.running_time_ms for p in count_sweep if p.label == "m-query"}
    naive = {p.x: p.running_time_ms for p in count_sweep if p.label == "s-query"}
    # Naive grows steeply with N; m-query grows much more slowly.
    assert naive[9] > 3.0 * naive[1]
    assert ours[9] < 0.66 * naive[9]  # >= 34% saving at 9 locations
    # With a single location the two algorithms essentially coincide.
    assert ours[1] == pytest.approx(naive[1], rel=0.35)


def test_fig48_region_agreement(bench_client):
    query = MQuery(
        config.M_QUERY_LOCATIONS[:3], day_time(10), 1200, 0.2
    )
    merged = m_query(bench_client, query, algorithm="mqmb_tbs")
    naive = m_query(bench_client, query, algorithm="sqmb_tbs_each")
    union = merged.segments | naive.segments
    assert union
    jaccard = len(merged.segments & naive.segments) / len(union)
    assert jaccard >= 0.9


def test_bench_mqmb_three_locations(bench_client, benchmark, duration_sweep):
    query = MQuery(config.M_QUERY_LOCATIONS[:3], day_time(10), 1200, 0.2)
    result = benchmark(lambda: m_query(bench_client, query))
    assert result.segments


def test_bench_naive_three_locations(bench_client, benchmark, count_sweep):
    query = MQuery(config.M_QUERY_LOCATIONS[:3], day_time(10), 1200, 0.2)
    result = benchmark.pedantic(
        lambda: m_query(bench_client, query, algorithm="sqmb_tbs_each"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.segments
