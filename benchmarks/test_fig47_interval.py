"""Fig 4.7: effect of the index granularity Δt ∈ {1, 5, 10, 20} min.

Expected shape: SQMB+TBS running time roughly flat in Δt, always below ES.
Runs on the reduced dataset — the Δt = 1 min index has 1440 temporal slots
and is the most expensive index this suite builds.
"""

import pytest

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.runner import run_interval_sweep
from repro.eval.tables import format_series


@pytest.fixture(scope="module")
def sweep(small_engine, emit):
    points = run_interval_sweep(
        small_engine,
        config.CENTER_LOCATION,
        config.INTERVALS_S,
        config.DEFAULT_SETTINGS.start_time_s,
        durations_s=(300, 600),
        prob=0.2,
        include_es=True,
    )
    emit(
        "fig47_interval",
        format_series(
            "Fig 4.7 — running time (ms) vs time interval Δt (min)",
            points, metric="running_time_ms", x_name="Δt (min)",
        ),
    )
    return points


def test_fig47_sqmb_below_es(sweep):
    ours = {p.x: p for p in sweep
            if p.algorithm == "sqmb_tbs" and p.label == "L=10min"}
    es = {p.x: p for p in sweep if p.label == "ES"}
    for delta in ours:
        assert ours[delta].running_time_ms < es[delta].running_time_ms


def test_fig47_roughly_flat(sweep):
    """SQMB+TBS is stable in Δt: no order-of-magnitude swings."""
    ours = [
        p.running_time_ms for p in sweep
        if p.algorithm == "sqmb_tbs" and p.label == "L=10min"
    ]
    assert max(ours) < 10 * max(min(ours), 1e-9)


def test_bench_query_at_one_minute_granularity(small_client, benchmark, sweep):
    query = SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        600,
        0.2,
    )
    result = benchmark.pedantic(
        lambda: s_query(small_client, query, delta_t_s=60),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert isinstance(result.segments, set)
