"""Fig 4.3: effect of the query probability Prob.

(a) running time vs Prob ∈ {20..100}% for SQMB+TBS (L = 10, 15 min) and ES
    — expected shape: ES flat and high (it verifies everything regardless
    of Prob), SQMB+TBS well below it at every Prob;
(b) reachable road length vs Prob — decreases as Prob grows.
"""

import pytest

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.runner import run_probability_sweep
from repro.eval.tables import format_series


@pytest.fixture(scope="module")
def sweep(bench_engine, emit):
    points = run_probability_sweep(
        bench_engine,
        config.CENTER_LOCATION,
        config.PROBABILITIES,
        config.DEFAULT_SETTINGS.start_time_s,
        durations_s=(600, 900),
        delta_t_s=config.DEFAULT_SETTINGS.delta_t_s,
    )
    emit(
        "fig43a_runtime",
        format_series(
            "Fig 4.3(a) — running time (ms) vs probability (%)",
            points, metric="running_time_ms", x_name="Prob (%)",
        ),
    )
    emit(
        "fig43b_length",
        format_series(
            "Fig 4.3(b) — reachable road length (km) vs probability (%)",
            points, metric="road_length_km", x_name="Prob (%)",
            value_format="{:.2f}",
        ),
    )
    return points


def test_fig43_shapes(sweep):
    ours = {p.x: p for p in sweep
            if p.algorithm == "sqmb_tbs" and p.label == "L=10min"}
    es = {p.x: p for p in sweep if p.label == "ES"}
    # SQMB+TBS beats ES at every probability.
    for prob in ours:
        assert ours[prob].running_time_ms < es[prob].running_time_ms
    # ES cost is flat in Prob (it always verifies the whole network).
    es_times = [es[x].probability_checks for x in sorted(es)]
    assert max(es_times) == min(es_times)
    # Road length decreases as Prob grows.
    lengths = [ours[x].road_length_km for x in sorted(ours)]
    assert lengths[0] >= lengths[-1]
    assert lengths[0] > 0


def test_bench_sqmb_tbs_high_prob(bench_client, benchmark, sweep):
    query = SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        600,
        0.8,
    )
    result = benchmark(lambda: s_query(bench_client, query))
    assert isinstance(result.segments, set)
