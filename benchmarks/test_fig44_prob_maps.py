"""Fig 4.4: region maps at Prob = 20%, 60%, 80%, 100%.

Expected shape: the region shrinks as Prob grows, losing low-speed local
roads first while the primary-arterial skeleton persists.
"""

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.network.model import RoadLevel
from repro.viz.ascii_map import render_region


def test_fig44_probability_maps(bench_client, bench_dataset, benchmark, emit):
    network = bench_dataset.network
    results = {}
    for prob in (0.2, 0.6, 0.8, 1.0):
        query = SQuery(
            config.CENTER_LOCATION,
            config.DEFAULT_SETTINGS.start_time_s,
            600,
            prob,
        )
        results[prob] = s_query(bench_client, query)
    benchmark(
        lambda: s_query(
            bench_client,
            SQuery(
                config.CENTER_LOCATION,
                config.DEFAULT_SETTINGS.start_time_s,
                600,
                1.0,
            )
        )
    )
    art = []
    for prob, result in results.items():
        art.append(
            f"Fig 4.4 — Prob={prob:.0%} ({len(result.segments)} segments, "
            f"{result.road_length_m(network) / 1000:.1f} km)"
        )
        art.append(render_region(result, network))
    emit("fig44_prob_maps", "\n".join(art))

    # Shrinking region (up to the unverified min-cover floor).
    sizes = [len(results[p].segments) for p in (0.2, 0.6, 0.8, 1.0)]
    assert sizes[0] >= sizes[-1]
    # The primary skeleton survives better than local roads: the share of
    # primary segments grows (or at least does not collapse) as Prob rises.
    def primary_share(result):
        if not result.segments:
            return 0.0
        primary = sum(
            1 for s in result.segments
            if network.segment(s).level == RoadLevel.PRIMARY
        )
        return primary / len(result.segments)

    if results[1.0].segments:
        assert primary_share(results[1.0]) >= primary_share(results[0.2]) * 0.8
