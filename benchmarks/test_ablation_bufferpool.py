"""Ablation: buffer-pool capacity sensitivity.

The ES baseline re-reads hot central time lists constantly, so it benefits
from a large page cache; SQMB+TBS touches each shell segment once and is
nearly cache-insensitive.  This ablation sweeps the pool size and reports
cold-query disk reads for both algorithms.
"""

from client_protocol import s_query
from repro.api.client import ReachabilityClient
from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.tables import format_table


def test_ablation_bufferpool(bench_dataset, benchmark, emit):
    query = SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        600,
        0.2,
    )
    rows = []
    reads = {}
    for capacity in (0, 64, 1024):
        engine = ReachabilityEngine(
            bench_dataset.network,
            bench_dataset.database,
            buffer_pool_pages=capacity,
        )
        engine.st_index(config.DEFAULT_SETTINGS.delta_t_s)
        with ReachabilityClient(engine) as client:
            ours = s_query(client, query)
            baseline = s_query(client, query, algorithm="es")
        reads[capacity] = (ours.cost.io.page_reads, baseline.cost.io.page_reads)
        rows.append(
            (
                f"pool={capacity:5d} pages",
                f"sqmb_tbs={ours.cost.io.page_reads:6d} reads   "
                f"es={baseline.cost.io.page_reads:6d} reads",
            )
        )
    emit(
        "ablation_bufferpool",
        format_table("Ablation — buffer-pool capacity (cold page reads)", rows),
    )
    # A bigger pool helps both, and never hurts.
    assert reads[1024][0] <= reads[0][0]
    assert reads[1024][1] <= reads[0][1]
    # SQMB+TBS reads less than ES at every pool size.
    for capacity in reads:
        assert reads[capacity][0] < reads[capacity][1]

    engine = ReachabilityEngine(
        bench_dataset.network, bench_dataset.database, buffer_pool_pages=64
    )
    engine.st_index(config.DEFAULT_SETTINGS.delta_t_s)
    with ReachabilityClient(engine) as client:
        s_query(client, query)
        result = benchmark(lambda: s_query(client, query))
    assert isinstance(result.segments, set)
