"""Ablation: Con-Index entry compression (flat uint32 vs delta varint).

§1.2 motivates compressing index structures ("a set of methods have been
developed to compress the index structure into a reasonable size").  This
ablation measures the size/time trade-off of the delta-varint entry codec
against the flat layout, and confirms query results are identical.
"""

from repro.core.con_index import ConnectionIndex
from repro.core.sqmb import sqmb_bounding_region
from repro.eval import config
from repro.eval.tables import format_table


def test_ablation_entry_compression(bench_dataset, benchmark, emit):
    slot_time = float(config.DEFAULT_SETTINGS.start_time_s)
    sample = sorted(bench_dataset.network.segment_ids())[:200]

    def build(compressed: bool) -> ConnectionIndex:
        con = ConnectionIndex(
            bench_dataset.network,
            bench_dataset.database,
            config.DEFAULT_SETTINGS.delta_t_s,
            compressed=compressed,
        )
        con.precompute(
            segment_ids=sample,
            slots=[con.slot_of(slot_time)],
            kinds=("far", "near"),
        )
        return con

    flat = build(compressed=False)
    packed = build(compressed=True)
    ratio = flat.bytes_stored / max(1, packed.bytes_stored)
    emit(
        "ablation_compression",
        format_table(
            "Ablation — Con-Index entry compression (200 segments, 1 slot)",
            [
                ("flat uint32 bytes", f"{flat.bytes_stored:,}"),
                ("delta-varint bytes", f"{packed.bytes_stored:,}"),
                ("compression ratio", f"{ratio:.2f}x"),
            ],
        ),
    )
    assert packed.bytes_stored < flat.bytes_stored
    # Entries identical under both codecs.
    slot = flat.slot_of(slot_time)
    for sid in sample[:20]:
        assert flat.far(sid, slot) == packed.far(sid, slot)

    # Benchmark: a full SQMB pass reading compressed entries from disk.
    r0 = sample[0]

    def query_via_compressed():
        packed.pool.invalidate()
        packed._decoded.clear()
        return sqmb_bounding_region(packed, r0, slot_time, 600, "far")

    region = benchmark(query_via_compressed)
    assert region.cover
