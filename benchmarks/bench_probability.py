#!/usr/bin/env python
"""Probability-kernel benchmark harness: columnar Eq. 3.1 vs scalar sets.

Writes ``BENCH_probability.json`` with three sections:

* ``microbench`` — the probability primitives head to head on a warmed
  buffer pool (so the timings isolate evaluation work, not disk churn):
  estimator construction (start-set gather), batched evaluation over a
  realistic candidate set (the query's Far cover), wave-based TBS and ES
  verification sweeps, each against its scalar reference from
  :mod:`repro.core.legacy_probability`;
* ``fig41_sweep`` — a Fig 4.1(a)-style duration sweep of *end-to-end*
  ``sqmb_tbs`` queries, run twice through the client: once on the
  columnar kernel and once with the executors temporarily routed through
  the scalar probability path (:func:`legacy_probability_path`);
* ``batch_throughput`` — ``QueryService.run_batch`` over a mixed
  workload, columnar vs scalar probability path, with queries/s.

Usage::

    PYTHONPATH=src python benchmarks/bench_probability.py [--quick] [--out PATH]

``--quick`` uses the reduced dataset and fewer repetitions — the CI smoke
configuration.  Every section reports the median of ``repeat`` runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

from repro.api import QueryOptions, ReachabilityClient, Request
from repro.core import legacy_probability as legacy
from repro.core.baseline import exhaustive_search
from repro.core.engine import ReachabilityEngine
from repro.core.executors import ExecutionContext
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, SQuery
from repro.core.service import QueryService
from repro.core.tbs import trace_back_search
from repro.datasets.shenzhen_like import default_dataset
from repro.eval import config
from repro.eval.workload import QueryWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent


def median_ms(fn, repeat: int) -> float:
    """Median wall time of ``fn()`` over ``repeat`` runs, in ms."""
    times = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        times.append((time.perf_counter() - started) * 1e3)
    return statistics.median(times)


def paired_median_ms(fn_a, fn_b, repeat: int) -> tuple[float, float]:
    """Interleaved medians of two contenders, alternating who runs first
    each repetition (robust to machine drift and cache-warmth order bias)."""
    a_times, b_times = [], []
    for i in range(repeat):
        first, second = (fn_a, fn_b) if i % 2 == 0 else (fn_b, fn_a)
        started = time.perf_counter()
        first()
        first_ms = (time.perf_counter() - started) * 1e3
        started = time.perf_counter()
        second()
        second_ms = (time.perf_counter() - started) * 1e3
        if i % 2 == 0:
            a_times.append(first_ms)
            b_times.append(second_ms)
        else:
            a_times.append(second_ms)
            b_times.append(first_ms)
    return statistics.median(a_times), statistics.median(b_times)


def bench_micro(engine, settings, repeat: int) -> list[dict]:
    """The probability primitives, columnar vs scalar, on warm pools."""
    st = engine.st_index(settings.delta_t_s)
    database = engine.database
    start = st.find_start_segment(settings.location)
    T = float(settings.start_time_s)
    L = float(settings.duration_s)
    context = ExecutionContext(engine, settings.delta_t_s)
    max_region = context.bounding_region("sqmb", (start,), T, L, "far")
    min_region = context.bounding_region("sqmb", (start,), T, L, "near")
    candidates = sorted(max_region.cover)

    def new_estimator():
        return ProbabilityEstimator(st, start, T, L, database.num_days)

    def old_estimator():
        return legacy.LegacyProbabilityEstimator(
            st, start, T, L, database.num_days
        )

    # Warm every page both sides will touch, so timings measure
    # evaluation work (decode caches, set building, membership probes),
    # not first-touch disk reads.
    old_estimator().probabilities(candidates)
    new_estimator().probabilities(candidates)

    rows: list[dict] = []

    def row(name, new_fn, old_fn, extra=None):
        new_ms, old_ms = paired_median_ms(new_fn, old_fn, repeat)
        entry = {
            "name": name,
            "kernel_ms": round(new_ms, 3),
            "legacy_ms": round(old_ms, 3),
            "speedup": round(old_ms / new_ms, 2) if new_ms > 0 else None,
        }
        if extra:
            entry.update(extra)
        rows.append(entry)

    row(
        "estimator construction (start-set gather)",
        new_estimator,
        old_estimator,
    )
    row(
        f"batch probability evaluation ({len(candidates)} candidates)",
        lambda: new_estimator().probabilities(candidates),
        lambda: old_estimator().probabilities(candidates),
        extra={"candidates": len(candidates)},
    )
    row(
        "single probability (adaptive path)",
        lambda: new_estimator().probability(candidates[len(candidates) // 2]),
        lambda: old_estimator().probability(candidates[len(candidates) // 2]),
    )
    row(
        "trace_back_search (waves vs FIFO)",
        lambda: trace_back_search(
            engine.network, {start: new_estimator()}, settings.prob,
            max_region, min_region,
        ),
        lambda: legacy.trace_back_search_reference(
            engine.network, {start: old_estimator()}, settings.prob,
            max_region, min_region,
        ),
    )
    row(
        "exhaustive_search (waves vs FIFO)",
        lambda: exhaustive_search(engine.network, new_estimator(), settings.prob),
        lambda: legacy.exhaustive_search_reference(
            engine.network, old_estimator(), settings.prob
        ),
    )
    return rows


def bench_fig41_sweep(engine, settings, durations_s, repeat: int) -> list[dict]:
    """End-to-end sqmb_tbs queries over durations, kernel vs scalar path."""
    client = ReachabilityClient(engine)
    rows = []
    for duration_s in durations_s:
        query = SQuery(
            settings.location, settings.start_time_s, duration_s, settings.prob
        )
        # reuse_regions=False: every run pays its own bounding-region
        # expansion, keeping the two paths' non-probability work equal.
        request = Request(
            query,
            QueryOptions(
                algorithm="sqmb_tbs", delta_t_s=settings.delta_t_s,
                reuse_regions=False,
            ),
        )

        def run():
            return client.send(request).result

        def run_legacy():
            with legacy.legacy_probability_path():
                return run()

        run()  # warm the con-index entries for this duration
        run_legacy()
        kernel_ms, legacy_ms = paired_median_ms(run, run_legacy, repeat)
        check = run()
        check_legacy = run_legacy()
        assert check.segments == check_legacy.segments, "kernel changed results"
        assert (
            check.cost.io.page_reads == check_legacy.cost.io.page_reads
        ), "kernel changed page accounting"
        rows.append(
            {
                "duration_min": duration_s // 60,
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 2)
                if kernel_ms > 0 else None,
            }
        )
    return rows


def bench_batch_throughput(engine, settings, batch_size: int, repeat: int) -> dict:
    """run_batch over a mixed workload: columnar vs scalar probability path."""
    workload = QueryWorkload(engine.network, seed=17)
    batch: list[SQuery | MQuery] = workload.mixed_batch(
        batch_size, max(1, batch_size // 4), start_time_s=settings.start_time_s
    )

    def run_cold():
        service = QueryService(engine, delta_t_s=settings.delta_t_s)
        return service.run_batch(batch, delta_t_s=settings.delta_t_s)

    def run_cold_legacy():
        with legacy.legacy_probability_path():
            return run_cold()

    run_cold()  # warm con-index entries / time lists on disk
    run_cold_legacy()
    kernel_ms, legacy_ms = paired_median_ms(run_cold, run_cold_legacy, repeat)
    report = run_cold()
    return {
        "batch_queries": len(batch),
        "legacy_ms": round(legacy_ms, 3),
        "kernel_ms": round(kernel_ms, 3),
        "speedup": round(legacy_ms / kernel_ms, 2),
        "queries_per_s_legacy": round(len(batch) / (legacy_ms / 1e3), 1),
        "queries_per_s_kernel": round(len(batch) / (kernel_ms / 1e3), 1),
        "probability_checks": report.probability_checks,
        "kernel_evals": report.kernel_probability_evals,
        "scalar_evals": report.scalar_probability_evals,
        "probability_waves": report.probability_waves,
        "max_wave_size": report.max_wave_size,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced dataset and repetitions (CI smoke configuration)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_probability.json",
        help="output JSON path (default: repo-root BENCH_probability.json)",
    )
    args = parser.parse_args()
    settings = config.SMALL_SETTINGS if args.quick else config.DEFAULT_SETTINGS
    repeat = 3 if args.quick else 7
    durations = (300, 600, 900) if args.quick else (300, 600, 900, 1200, 1500)
    batch_size = 8 if args.quick else 16

    started = time.perf_counter()
    print(f"building dataset ({'quick' if args.quick else 'full'}) ...")
    dataset = default_dataset(settings.dataset)
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(settings.delta_t_s)
    print(f"dataset ready in {time.perf_counter() - started:.1f}s; benchmarking ...")

    micro = bench_micro(engine, settings, repeat)
    sweep = bench_fig41_sweep(engine, settings, durations, repeat)
    throughput = bench_batch_throughput(engine, settings, batch_size, repeat)

    report = {
        "benchmark": "columnar Eq. 3.1 probability kernel + wave evaluation",
        "mode": "quick" if args.quick else "full",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "dataset": {
            "segments": engine.network.num_segments,
            "trajectories": len(engine.database),
            "delta_t_s": settings.delta_t_s,
        },
        "microbench": micro,
        "fig41_sweep": sweep,
        "batch_throughput": throughput,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
