"""Table 4.2: evaluation configuration.

Prints the parameter grid this reproduction sweeps (mirroring the paper's)
and benchmarks index construction for the default granularity — the
offline cost every configuration row shares.
"""

from repro.core.st_index import STIndex
from repro.eval import config
from repro.eval.tables import format_table


def test_tab42_configuration(bench_dataset, benchmark, emit):
    rows = [
        ("duration L", "{5, 10, ..., 35} min"),
        ("probability Prob", "{20%, 40%, 60%, 80%, 100%}"),
        ("start time T", "every 2 hours over the day"),
        ("interval Δt", "{1, 5, 10, 20} min"),
        ("s-query algorithms", "ES, SQMB+TBS"),
        ("m-query algorithms", "SQMB+TBS (xN), MQMB+TBS"),
        ("query location", str(config.CENTER_LOCATION.as_tuple())),
    ]
    emit("tab42_config", format_table("Table 4.2 — Evaluation Configuration", rows))

    def build_index():
        index = STIndex(bench_dataset.network, config.DEFAULT_SETTINGS.delta_t_s)
        index.build(bench_dataset.database)
        return index

    index = benchmark.pedantic(build_index, rounds=1, iterations=1)
    assert index.stats.num_entries > 0
