"""Fig 4.9: the m-query region of three locations vs its single-location
parts.

Expected shape: the combined region is (essentially) the union of the three
individual Prob-reachable regions.
"""

from client_protocol import m_query, s_query
from repro.core.query import MQuery, SQuery
from repro.eval import config
from repro.trajectory.model import day_time
from repro.viz.ascii_map import render_region

LOCATIONS = config.M_QUERY_LOCATIONS[:3]


def test_fig49_three_location_maps(bench_client, bench_dataset, benchmark, emit):
    network = bench_dataset.network
    combined = benchmark(
        lambda: m_query(
            bench_client, MQuery(LOCATIONS, day_time(10), 900, 0.2)
        )
    )
    singles = [
        s_query(bench_client, SQuery(loc, day_time(10), 900, 0.2))
        for loc in LOCATIONS
    ]
    art = [
        f"Fig 4.9(a) — all 3 locations ({len(combined.segments)} segments)",
        render_region(combined, network),
    ]
    for label, result in zip("ABC", singles):
        art.append(
            f"Fig 4.9 — location {label} ({len(result.segments)} segments)"
        )
        art.append(render_region(result, network))
    emit("fig49_mquery_maps", "\n".join(art))

    union = set().union(*(r.segments for r in singles))
    overlap = len(combined.segments & union) / max(1, len(combined.segments | union))
    assert overlap >= 0.9, "m-query region must be ~the union of the parts"
