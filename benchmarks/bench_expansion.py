#!/usr/bin/env python
"""Region-expansion benchmark harness: CSR kernel vs legacy set/heap code.

Writes ``BENCH_expansion.json`` with three sections:

* ``microbench`` — the in-memory expansion primitives head to head:
  ``time_bounded_expansion`` (the Con-Index construction kernel),
  ``slot_aware_expansion`` (the residual-carry Far top-up) and the full
  SQMB/MQMB/reverse bounding-region builders, each timed against its
  legacy reference from :mod:`repro.core.legacy_expansion` on a warmed
  Con-Index (so the comparison isolates expansion work, not disk I/O);
* ``fig41_sweep`` — a Fig 4.1(a)-style duration sweep of *end-to-end*
  ``sqmb_tbs`` queries, run twice through the service: once on the CSR
  kernels and once with the executors temporarily routed through the
  legacy region builders;
* ``batch_throughput`` — ``QueryService.run_batch`` over a mixed
  workload: cold service vs a second pass served from the
  service-lifetime region cache (the cross-batch sharing this PR adds),
  plus the legacy-kernel cold batch for the kernel-only delta.

Usage::

    PYTHONPATH=src python benchmarks/bench_expansion.py [--quick] [--out PATH]

``--quick`` uses the reduced dataset and fewer repetitions — the CI smoke
configuration.  Every section reports the median of ``repeat`` runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

from repro.api import QueryOptions, ReachabilityClient, Request
from repro.core import executors as executors_module
from repro.core import legacy_expansion as legacy
from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery, SQuery
from repro.core.service import QueryService
from repro.core.sqmb import slot_aware_expansion, sqmb_bounding_region
from repro.core.mqmb import mqmb_bounding_region
from repro.core.reverse import reverse_bounding_region
from repro.datasets.shenzhen_like import default_dataset
from repro.eval import config
from repro.eval.workload import QueryWorkload
from repro.network.expansion import time_bounded_expansion

REPO_ROOT = Path(__file__).resolve().parent.parent


def median_ms(fn, repeat: int) -> float:
    """Median wall time of ``fn()`` over ``repeat`` runs, in ms."""
    times = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        times.append((time.perf_counter() - started) * 1e3)
    return statistics.median(times)


def paired_median_ms(fn_a, fn_b, repeat: int) -> tuple[float, float]:
    """Interleaved medians of two contenders, alternating who runs first
    each repetition (robust to machine drift and cache-warmth order bias)."""
    a_times, b_times = [], []
    for i in range(repeat):
        first, second = (fn_a, fn_b) if i % 2 == 0 else (fn_b, fn_a)
        started = time.perf_counter()
        first()
        first_ms = (time.perf_counter() - started) * 1e3
        started = time.perf_counter()
        second()
        second_ms = (time.perf_counter() - started) * 1e3
        if i % 2 == 0:
            a_times.append(first_ms)
            b_times.append(second_ms)
        else:
            a_times.append(second_ms)
            b_times.append(first_ms)
    return statistics.median(a_times), statistics.median(b_times)


def bench_micro(engine, settings, repeat: int) -> list[dict]:
    """The expansion primitives, new vs legacy, on a warmed Con-Index."""
    con = engine.con_index(settings.delta_t_s)
    st = engine.st_index(settings.delta_t_s)
    start = st.find_start_segment(settings.location)
    m_starts = [
        st.find_start_segment(loc) for loc in config.M_QUERY_LOCATIONS[:3]
    ]
    T = float(settings.start_time_s)
    L = float(settings.duration_s)
    # Warm every entry and travel-time vector both sides will touch, so
    # the timings measure in-memory expansion, not lazy index builds.
    for kind in ("far", "near"):
        sqmb_bounding_region(con, start, T, L, kind)
        mqmb_bounding_region(con, m_starts, T, L, kind)
        reverse_bounding_region(con, start, T, L, kind)
    slot = con.slot_of(T)
    tt_vector = con.travel_time_vector("far", slot)
    tt_list = con.travel_time_list("far", slot)
    # The honest pre-PR baseline: per-call speed-bound probing.
    tt_closure = legacy.travel_time_reference(con, "far", slot)
    rows: list[dict] = []

    def row(name, new_fn, old_fn):
        new_ms, old_ms = paired_median_ms(new_fn, old_fn, repeat)
        rows.append(
            {
                "name": name,
                "csr_ms": round(new_ms, 3),
                "legacy_ms": round(old_ms, 3),
                "speedup": round(old_ms / new_ms, 2) if new_ms > 0 else None,
            }
        )

    budget = float(settings.delta_t_s)
    row(
        "time_bounded_expansion (con-index build kernel)",
        lambda: time_bounded_expansion(
            engine.network, start, budget, tt_vector, cost_list=tt_list
        ),
        lambda: legacy.time_bounded_expansion_reference(
            engine.network, start, budget, tt_closure
        ),
    )
    # One full construction slice: every segment's Far entry for one slot,
    # kernel + cached speed vectors vs classic expansion + per-call probing.
    segment_ids = sorted(engine.network.segment_ids())

    def build_new():
        for segment_id in segment_ids:
            time_bounded_expansion(
                engine.network, segment_id, budget, tt_vector, cost_list=tt_list
            )

    def build_legacy():
        for segment_id in segment_ids:
            legacy.time_bounded_expansion_reference(
                engine.network, segment_id, budget, tt_closure
            )

    row("con-index build slice (all segments, one slot)", build_new, build_legacy)
    row(
        "slot_aware_expansion (residual carry)",
        lambda: slot_aware_expansion(con, [start], T, L, "far"),
        lambda: legacy.slot_aware_expansion_reference(con, [start], T, L, "far"),
    )
    row(
        "sqmb_bounding_region (far)",
        lambda: sqmb_bounding_region(con, start, T, L, "far"),
        lambda: legacy.sqmb_bounding_region_reference(con, start, T, L, "far"),
    )
    long_l = 5 * float(settings.delta_t_s)  # multi-hop regions (L = 5 Δt)
    sqmb_bounding_region(con, start, T, long_l, "far")  # warm entries
    row(
        "sqmb_bounding_region (far, L=5Δt)",
        lambda: sqmb_bounding_region(con, start, T, long_l, "far"),
        lambda: legacy.sqmb_bounding_region_reference(con, start, T, long_l, "far"),
    )
    row(
        "mqmb_bounding_region (far, 3 seeds)",
        lambda: mqmb_bounding_region(con, m_starts, T, L, "far"),
        lambda: legacy.mqmb_bounding_region_reference(con, m_starts, T, L, "far"),
    )
    row(
        "reverse_bounding_region (far)",
        lambda: reverse_bounding_region(con, start, T, L, "far"),
        lambda: legacy.reverse_bounding_region_reference(con, start, T, L, "far"),
    )
    # The other shared hot-path primitive: time-list decode (runs once per
    # charged page read in TBS/ES probability checks).
    payloads = []
    for slot in st.slots_in_window(T, T + L):
        if st.has_entry(start, slot):
            chain = st._directory[(start, slot)]
            payloads.extend(
                st._store.read(pointer, pool=st.pool) for pointer in chain
            )
    if payloads:
        from repro.core.st_index import decode_time_list

        row(
            "decode_time_list (per charged read)",
            lambda: [decode_time_list(p) for p in payloads],
            lambda: [legacy.decode_time_list_reference(p) for p in payloads],
        )
    return rows


def bench_kernel_scaling(quick: bool, repeat: int) -> list[dict]:
    """The kernel at growing network scale (the roadmap's operating point).

    Pure expansion work on synthetic grid cities with randomized speeds —
    no trajectory data needed — comparing the CSR kernel against the
    classic heap loop as covers grow from neighbourhood-sized to
    city-sized.  This is where the frontier-at-a-time formulation pays:
    the Python loop touches every cover member through the interpreter,
    the kernel relaxes whole frontiers per numpy call.
    """
    import numpy as np

    from repro.network.generator import grid_city

    sizes = (11, 30) if quick else (11, 30, 60)
    rows = []
    for grid in sizes:
        network = grid_city(
            rows=grid, cols=grid, spacing=800.0, primary_every=4, seed=7
        )
        csr = network.csr()
        rng = np.random.default_rng(3)
        cost = csr.lengths / rng.uniform(4.0, 14.0, csr.n)

        def cost_callable(segment_id: int) -> float:
            return float(cost[csr.row_of(segment_id)])

        start = int(csr.ids[csr.n // 2])
        for budget in (1200.0, 3600.0):
            cover = len(
                time_bounded_expansion(network, start, budget, cost).arrival
            )
            csr_ms, legacy_ms = paired_median_ms(
                lambda: time_bounded_expansion(network, start, budget, cost),
                lambda: legacy.time_bounded_expansion_reference(
                    network, start, budget, cost_callable
                ),
                repeat,
            )
            rows.append(
                {
                    "segments": csr.n,
                    "budget_s": budget,
                    "cover": cover,
                    "csr_ms": round(csr_ms, 3),
                    "legacy_ms": round(legacy_ms, 3),
                    "speedup": round(legacy_ms / csr_ms, 2),
                }
            )
    return rows


class _LegacyKernels:
    """Temporarily restore the pre-PR hot path: legacy region builders in
    the executors, the per-element time-list decoder, and no decoded-record
    cache in the built ST-Indexes."""

    def __init__(self, engine):
        self._engine = engine

    def __enter__(self):
        import repro.core.reverse as reverse_module
        import repro.core.st_index as st_index_module

        self._saved = (
            executors_module.sqmb_bounding_region,
            executors_module.mqmb_bounding_region,
            reverse_module.reverse_bounding_region,
            st_index_module.decode_time_list,
        )
        executors_module.sqmb_bounding_region = (
            legacy.sqmb_bounding_region_reference
        )
        executors_module.mqmb_bounding_region = (
            legacy.mqmb_bounding_region_reference
        )
        reverse_module.reverse_bounding_region = (
            legacy.reverse_bounding_region_reference
        )
        st_index_module.decode_time_list = legacy.decode_time_list_reference
        self._record_caches = [
            (index, index.record_cache_size)
            for index in self._engine._st_indexes.values()
        ]
        for index, _ in self._record_caches:
            index.record_cache_size = 0
        return self

    def __exit__(self, *exc):
        import repro.core.reverse as reverse_module
        import repro.core.st_index as st_index_module

        (
            executors_module.sqmb_bounding_region,
            executors_module.mqmb_bounding_region,
            reverse_module.reverse_bounding_region,
            st_index_module.decode_time_list,
        ) = self._saved
        for index, size in self._record_caches:
            index.record_cache_size = size
        return False


def bench_fig41_sweep(engine, settings, durations_s, repeat: int) -> list[dict]:
    """End-to-end sqmb_tbs queries over durations, CSR vs legacy kernels."""
    client = ReachabilityClient(engine)
    rows = []
    for duration_s in durations_s:
        query = SQuery(
            settings.location, settings.start_time_s, duration_s, settings.prob
        )
        # reuse_regions=False: every run must pay its own bounding-region
        # expansion, otherwise the service-lifetime cache would serve the
        # bounds and the kernels under measurement would never run.
        request = Request(
            query,
            QueryOptions(
                algorithm="sqmb_tbs", delta_t_s=settings.delta_t_s,
                reuse_regions=False,
            ),
        )

        def run():
            return client.send(request).result

        def run_legacy():
            with _LegacyKernels(client.engine):
                return run()

        run()  # warm the con-index entries for this duration
        run_legacy()
        csr_ms, legacy_ms = paired_median_ms(run, run_legacy, repeat)
        check = run()
        check_legacy = run_legacy()
        assert check.segments == check_legacy.segments, "kernel changed results"
        rows.append(
            {
                "duration_min": duration_s // 60,
                "csr_ms": round(csr_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / csr_ms, 2) if csr_ms > 0 else None,
            }
        )
    return rows


def bench_batch_throughput(engine, settings, batch_size: int, repeat: int) -> dict:
    """run_batch over a mixed workload: legacy vs CSR, cold vs warm cache."""
    workload = QueryWorkload(engine.network, seed=17)
    batch: list[SQuery | MQuery] = workload.mixed_batch(
        batch_size, max(1, batch_size // 4), start_time_s=settings.start_time_s
    )

    def run_cold():
        service = QueryService(engine, delta_t_s=settings.delta_t_s)
        return service.run_batch(batch, delta_t_s=settings.delta_t_s)

    def run_cold_legacy():
        with _LegacyKernels(engine):
            return run_cold()

    run_cold()  # warm con-index entries / time lists on disk
    run_cold_legacy()
    csr_cold_ms, legacy_cold_ms = paired_median_ms(
        run_cold, run_cold_legacy, repeat
    )
    # Cross-batch sharing: one service, same workload again — regions come
    # from the service-lifetime cache.
    service = QueryService(engine, delta_t_s=settings.delta_t_s)
    first = service.run_batch(batch, delta_t_s=settings.delta_t_s)

    def run_warm():
        return service.run_batch(batch, delta_t_s=settings.delta_t_s)

    cold_ref_ms, warm_ms = paired_median_ms(run_cold, run_warm, repeat)
    warm_report = service.run_batch(batch, delta_t_s=settings.delta_t_s)
    return {
        "batch_queries": len(batch),
        "legacy_cold_ms": round(legacy_cold_ms, 3),
        "csr_cold_ms": round(csr_cold_ms, 3),
        "csr_warm_cache_ms": round(warm_ms, 3),
        "cold_speedup_vs_legacy": round(legacy_cold_ms / csr_cold_ms, 2),
        "warm_speedup_vs_cold": round(cold_ref_ms / warm_ms, 2),
        "queries_per_s_cold": round(len(batch) / (csr_cold_ms / 1e3), 1),
        "queries_per_s_warm": round(len(batch) / (warm_ms / 1e3), 1),
        "first_batch_regions_computed": first.regions_computed,
        "warm_batch_regions_computed": warm_report.regions_computed,
        "warm_batch_regions_reused": warm_report.regions_reused,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced dataset and repetitions (CI smoke configuration)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_expansion.json",
        help="output JSON path (default: repo-root BENCH_expansion.json)",
    )
    args = parser.parse_args()
    settings = config.SMALL_SETTINGS if args.quick else config.DEFAULT_SETTINGS
    repeat = 3 if args.quick else 7
    durations = (300, 600, 900) if args.quick else (300, 600, 900, 1200, 1500)
    batch_size = 8 if args.quick else 16

    started = time.perf_counter()
    print(f"building dataset ({'quick' if args.quick else 'full'}) ...")
    dataset = default_dataset(settings.dataset)
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(settings.delta_t_s)
    print(f"dataset ready in {time.perf_counter() - started:.1f}s; benchmarking ...")

    micro = bench_micro(engine, settings, repeat)
    scaling = bench_kernel_scaling(args.quick, repeat)
    sweep = bench_fig41_sweep(engine, settings, durations, repeat)
    throughput = bench_batch_throughput(engine, settings, batch_size, repeat)

    report = {
        "benchmark": "region-expansion CSR kernel + service-lifetime region cache",
        "mode": "quick" if args.quick else "full",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "dataset": {
            "segments": engine.network.num_segments,
            "trajectories": len(engine.database),
            "delta_t_s": settings.delta_t_s,
        },
        "microbench": micro,
        "kernel_scaling": scaling,
        "fig41_sweep": sweep,
        "batch_throughput": throughput,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
