"""Client-API equivalents of the retired engine facade, for benchmarks.

The figure benchmarks measure the paper's cold one-call-per-query
protocol.  They used to go through the deprecated
``ReachabilityEngine.s_query``/``m_query`` shims; these helpers issue
the same executions through :class:`repro.api.ReachabilityClient` with
explicit algorithms (a benchmark must pin what it measures — no
auto-routing) and ``reuse_regions=False`` so repeated sweep points pay
their own bounding-region work, exactly like the old facade did.
"""

from __future__ import annotations

from repro.api import QueryOptions, Request

__all__ = ["m_query", "r_query", "s_query"]


def _cold_send(client, query, algorithm, delta_t_s, warm, direction):
    response = client.send(
        Request(
            query,
            QueryOptions(
                direction=direction,
                algorithm=algorithm,
                delta_t_s=delta_t_s,
                warm=warm,
                reuse_regions=False,
            ),
        )
    )
    return response.result


def s_query(client, query, algorithm="sqmb_tbs", delta_t_s=None, warm=False):
    """One single-location query, cold by default (the paper's protocol)."""
    return _cold_send(client, query, algorithm, delta_t_s, warm, "forward")


def m_query(client, query, algorithm="mqmb_tbs", delta_t_s=None, warm=False):
    """One multi-location query, cold by default."""
    return _cold_send(client, query, algorithm, delta_t_s, warm, "forward")


def r_query(client, query, algorithm="sqmb_tbs", delta_t_s=None, warm=False):
    """One reverse (who-can-reach-me) query, cold by default."""
    return _cold_send(client, query, algorithm, delta_t_s, warm, "reverse")
