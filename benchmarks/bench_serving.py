#!/usr/bin/env python
"""Sharded serving benchmark: scatter-gather batches vs single-process.

Writes ``BENCH_serving.json`` with one section per workload size:

* ``single_process`` — ``QueryService.run_batch`` over the mixed
  fig-4.8-style workload (seed-17 ``mixed_batch``), the PR 5 throughput
  protocol: shared engine, fresh service per repetition, serial
  execution;
* ``sharded`` — the same batch through
  :class:`repro.serving.ShardedEngine` at K spatial shards served by
  worker processes (engines built once, outside the timed region — the
  serving warm-pool model); each row reports the **measured** wall
  clock on this machine, the paired speedup over the single-process
  contender, the speedup over the committed PR 5 full-mode baseline
  (452.3 q/s), and a result-equality check against the single-process
  results;
* ``modeled_parallel`` — the projected multi-core wall clock: on a
  single-core container the worker processes time-share one CPU, so
  measured multi-worker rows show IPC overhead but no parallel win.
  The projection takes each shard's *uncontended* in-worker wall time
  (measured with ``workers=1``, where nothing competes for the core;
  it covers everything the worker does for the shard — service setup,
  the sub-batch, result packing), groups shards onto workers exactly
  as the dispatcher deals them (``shard_id % workers``), and charges
  the slowest worker group plus the *measured* serial parent overhead
  (dispatch + pipe codec + gather + merge).  Every input to the model is a measurement from this run;
  only the overlap of worker groups is assumed.

* ``fault_overhead`` — the PR 9 no-fault hot-path gate: the same batch
  through a supervised engine (deadline + bounded retries armed, the
  defaults) and one with the machinery disabled (``deadline_ms=None,
  max_retries=0``), interleaved pairwise; the run **fails** if the
  supervised best-of-N exceeds the disabled best-of-N by more than 5%.

Every sharded run is verified to return the identical segment sets the
single-process engine returns (the full randomized equivalence proof
lives in ``tests/test_serving.py``; the benchmark only measures).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--out PATH]

``--quick`` uses the reduced dataset, smaller batches and fewer
repetitions — the CI smoke configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

from repro.core.engine import ReachabilityEngine
from repro.core.service import QueryService
from repro.datasets.shenzhen_like import default_dataset
from repro.eval import config
from repro.eval.workload import QueryWorkload
from repro.serving import ShardedEngine

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_probability import median_ms  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The PR 5 full-mode ``queries_per_s_kernel`` committed in
#: ``BENCH_io.json`` — the single-process baseline the ISSUE 6
#: acceptance criterion (>= 2.5x at 4 worker processes) is measured
#: against.
PR5_BASELINE_QPS = 452.3

#: PR 9 acceptance gate: the no-fault hot path with the supervisor
#: machinery armed (deadline + bounded retries, the defaults) must stay
#: within 5% of the same engine with the machinery disabled
#: (``deadline_ms=None, max_retries=0``).
FAULT_OVERHEAD_TOLERANCE = 0.05


def fresh_engine(dataset, settings) -> ReachabilityEngine:
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(settings.delta_t_s)
    return engine


def _timed_reps(run, repeat: int):
    """Median wall ms plus per-shard median in-worker wall ms."""
    totals: list[float] = []
    walls: dict[int, list[float]] = {}
    report = None
    for _ in range(repeat):
        started = time.perf_counter()
        report = run()
        totals.append((time.perf_counter() - started) * 1e3)
        for shard in report.shard_reports:
            walls.setdefault(shard.shard_id, []).append(
                (shard.worker_wall_s or shard.wall_time_s) * 1e3
            )
    return (
        statistics.median(totals),
        {sid: statistics.median(v) for sid, v in walls.items()},
        report,
    )


def bench_workload(
    dataset,
    settings,
    batch_size: int,
    repeat: int,
    configs: tuple[tuple[int, int], ...],
    full_mode: bool,
) -> dict:
    workload = QueryWorkload(dataset.network, seed=17)
    batch = workload.mixed_batch(
        batch_size, max(1, batch_size // 4), start_time_s=settings.start_time_s
    )

    # Single-process contender: the PR 5 throughput protocol (shared
    # engine, fresh service per repetition, serial pipeline).
    engine = fresh_engine(dataset, settings)

    def run_single():
        service = QueryService(engine, delta_t_s=settings.delta_t_s)
        return service.run_batch(batch, delta_t_s=settings.delta_t_s)

    reference = run_single()  # warm con-index entries / time lists on disk
    single_ms = median_ms(run_single, repeat)
    single_qps = len(batch) / (single_ms / 1e3)
    print(
        f"  single-process: {single_ms:.1f} ms "
        f"({single_qps:.1f} q/s over {len(batch)} queries)"
    )

    rows = []
    uncontended: dict[int, tuple[float, dict[int, float]]] = {}
    for workers, shards in configs:
        # A fresh parent per configuration: shard slices must be cut from
        # a from-scratch disk so worker-side Con-Index appends land at
        # the same page ids a single-process engine would use.
        sharded = ShardedEngine(
            QueryService(
                fresh_engine(dataset, settings), delta_t_s=settings.delta_t_s
            ),
            shards=shards,
            workers=workers,
            delta_t_s=settings.delta_t_s,
        )

        def run_sharded():
            return sharded.run_batch(batch)

        report = run_sharded()  # warm the worker engines symmetrically
        matches = all(
            ours.segments == theirs.segments
            and ours.start_segments == theirs.start_segments
            for ours, theirs in zip(report.results, reference.results)
        )
        sharded_ms, shard_walls, report = _timed_reps(run_sharded, repeat)
        sharded.close()
        if workers == 1:
            uncontended[shards] = (sharded_ms, shard_walls)
        qps = len(batch) / (sharded_ms / 1e3)
        row = {
            "workers": workers,
            "shards": shards,
            "batch_ms": round(sharded_ms, 3),
            "queries_per_s": round(qps, 1),
            "speedup_vs_single_process": round(single_ms / sharded_ms, 2),
            "results_match_single_process": matches,
            "shard_queries": [s.queries for s in report.shard_reports],
        }
        if full_mode:
            row["speedup_vs_pr5_baseline"] = round(qps / PR5_BASELINE_QPS, 2)
        rows.append(row)
        print(
            f"  sharded x{workers} workers / {shards} shards: "
            f"{sharded_ms:.1f} ms ({qps:.1f} q/s, "
            f"{row['speedup_vs_single_process']}x vs single, "
            f"match={matches})"
        )
        if not matches:
            raise SystemExit(
                "sharded results diverged from single-process results"
            )

    # Multi-core projection from the uncontended workers=1 measurements.
    modeled = []
    for workers, shards in configs:
        if shards not in uncontended:
            continue
        total_ms, shard_walls = uncontended[shards]
        overhead_ms = max(0.0, total_ms - sum(shard_walls.values()))
        group_ms = [
            sum(
                wall
                for sid, wall in shard_walls.items()
                if sid % workers == worker_idx
            )
            for worker_idx in range(workers)
        ]
        modeled_ms = max(group_ms) + overhead_ms
        qps = len(batch) / (modeled_ms / 1e3)
        entry = {
            "workers": workers,
            "shards": shards,
            "modeled_batch_ms": round(modeled_ms, 3),
            "queries_per_s": round(qps, 1),
            "slowest_worker_ms": round(max(group_ms), 3),
            "parent_overhead_ms": round(overhead_ms, 3),
        }
        if full_mode:
            entry["speedup_vs_pr5_baseline"] = round(
                qps / PR5_BASELINE_QPS, 2
            )
        modeled.append(entry)
        print(
            f"  modeled x{workers} workers / {shards} shards: "
            f"{modeled_ms:.1f} ms ({qps:.1f} q/s projected)"
        )

    section = {
        "batch_queries": len(batch),
        "single_process": {
            "batch_ms": round(single_ms, 3),
            "queries_per_s": round(single_qps, 1),
        },
        "sharded": rows,
        "modeled_parallel": modeled,
    }
    return section


def bench_fault_overhead(dataset, settings, batch_size: int, repeat: int) -> dict:
    """No-fault hot-path cost of the PR 9 supervisor machinery.

    Two identically configured engines answer the same batch: one with
    the fault-tolerance defaults (per-scatter deadline armed, bounded
    retries) and one with the machinery disabled (``deadline_ms=None,
    max_retries=0``).  Same protocol, same worker code — the delta is
    the supervision bookkeeping on the hot path (request ids, attempt
    tracking, deadline arithmetic in the gather loop), gated at
    :data:`FAULT_OVERHEAD_TOLERANCE`.  Samples are interleaved pairwise
    so machine noise hits both contenders symmetrically.
    """
    workload = QueryWorkload(dataset.network, seed=17)
    batch = workload.mixed_batch(
        batch_size, max(1, batch_size // 4), start_time_s=settings.start_time_s
    )
    contenders = {}
    for label, overrides in (
        ("supervised_default", {}),
        ("machinery_disabled", {"deadline_ms": None, "max_retries": 0}),
    ):
        engine = ShardedEngine(
            QueryService(
                fresh_engine(dataset, settings), delta_t_s=settings.delta_t_s
            ),
            shards=4,
            workers=2,
            delta_t_s=settings.delta_t_s,
            **overrides,
        )
        engine.run_batch(batch)  # warm the worker engines symmetrically
        contenders[label] = engine

    # Best-of-N is the gate estimator: on a time-shared container the
    # scheduler inflates individual samples by far more than the 5%
    # budget, and that noise only ever adds — the fastest observed run
    # is the cleanest view of what the machinery itself costs.  The
    # medians are recorded alongside for context.
    reps = max(3 * repeat, 9)
    samples: dict[str, list[float]] = {label: [] for label in contenders}
    for _ in range(reps):
        for label, engine in contenders.items():
            started = time.perf_counter()
            report = engine.run_batch(batch)
            samples[label].append((time.perf_counter() - started) * 1e3)
            assert report.worker_restarts == 0 and report.retries == 0
    for engine in contenders.values():
        engine.close()

    default_ms = min(samples["supervised_default"])
    disabled_ms = min(samples["machinery_disabled"])
    overhead = (default_ms - disabled_ms) / disabled_ms
    print(
        f"  fault machinery: supervised {default_ms:.1f} ms vs "
        f"disabled {disabled_ms:.1f} ms best-of-{reps} "
        f"({overhead * 100:+.1f}% overhead, gate {FAULT_OVERHEAD_TOLERANCE:.0%})"
    )
    if overhead > FAULT_OVERHEAD_TOLERANCE:
        raise SystemExit(
            f"fault-machinery overhead {overhead:.1%} exceeds the "
            f"{FAULT_OVERHEAD_TOLERANCE:.0%} no-fault hot-path budget"
        )
    return {
        "batch_queries": len(batch),
        "workers": 2,
        "shards": 4,
        "repetitions": reps,
        "estimator": "best_of_n_interleaved",
        "supervised_default_ms": round(default_ms, 3),
        "machinery_disabled_ms": round(disabled_ms, 3),
        "supervised_default_median_ms": round(
            statistics.median(samples["supervised_default"]), 3
        ),
        "machinery_disabled_median_ms": round(
            statistics.median(samples["machinery_disabled"]), 3
        ),
        "overhead_fraction": round(overhead, 4),
        "tolerance_fraction": FAULT_OVERHEAD_TOLERANCE,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced dataset and repetitions (CI smoke configuration)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_serving.json",
        help="output JSON path (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args()
    settings = config.SMALL_SETTINGS if args.quick else config.DEFAULT_SETTINGS
    repeat = 3 if args.quick else 7
    if args.quick:
        configs = ((1, 4), (2, 4))
        batch_sizes = (8,)
    else:
        configs = ((1, 4), (2, 4), (4, 4), (1, 8), (4, 8))
        batch_sizes = (16, 128)

    started = time.perf_counter()
    print(f"building dataset ({'quick' if args.quick else 'full'}) ...")
    dataset = default_dataset(settings.dataset)
    print(
        f"dataset ready in {time.perf_counter() - started:.1f}s; "
        "benchmarking ..."
    )

    sections = {}
    for batch_size in batch_sizes:
        total = batch_size + max(1, batch_size // 4)
        print(f"workload: {total}-query mixed batch")
        sections[f"batch_{total}"] = bench_workload(
            dataset, settings, batch_size, repeat, configs,
            full_mode=not args.quick,
        )

    print("fault-machinery overhead (no-fault hot path)")
    fault_overhead = bench_fault_overhead(
        dataset, settings, batch_sizes[0], repeat
    )

    report = {
        "benchmark": (
            "sharded multi-process serving: spatial partitioning, "
            "per-shard workers, scatter-gather batches"
        ),
        "mode": "quick" if args.quick else "full",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
        },
        "dataset": {
            "segments": dataset.network.num_segments,
            "trajectories": len(dataset.database),
            "delta_t_s": settings.delta_t_s,
        },
        "workloads": sections,
        "fault_overhead": fault_overhead,
    }
    if not args.quick:
        report["pr5_baseline_queries_per_s"] = PR5_BASELINE_QPS

        def best_at_4(key):
            return max(
                (
                    row["queries_per_s"]
                    for section in sections.values()
                    for row in section[key]
                    if row["workers"] == 4
                ),
                default=None,
            )

        measured = best_at_4("sharded")
        modeled = best_at_4("modeled_parallel")
        report["measured_queries_per_s_at_4_workers"] = measured
        report["measured_speedup_vs_pr5_baseline_at_4_workers"] = round(
            measured / PR5_BASELINE_QPS, 2
        )
        report["modeled_parallel_queries_per_s_at_4_workers"] = modeled
        report["speedup_vs_pr5_baseline_at_4_workers"] = round(
            modeled / PR5_BASELINE_QPS, 2
        )
        report["speedup_basis"] = (
            "modeled_parallel: slowest uncontended worker group + measured "
            "parent overhead (see note)"
        )
        report["note"] = (
            f"this container exposes {os.cpu_count()} CPU core(s), so the "
            "4 worker processes time-share one core and measured "
            "multi-worker wall clock cannot show parallel speedup; the "
            "modeled_parallel rows project the multi-core wall clock from "
            "this run's uncontended per-shard wall times and measured "
            "dispatch/merge overhead — measured single-core rows are "
            "reported unchanged alongside"
        )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
