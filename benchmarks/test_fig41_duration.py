"""Fig 4.1: effect of the query duration L.

(a) running time of ES vs SQMB+TBS (Δt = 5, 10 min) as L grows 5..35 min —
    expected shape: SQMB+TBS far below ES, savings largest at small L;
(b) reachable road length vs L — grows with L, insensitive to Δt.
"""

import pytest

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.runner import run_duration_sweep
from repro.eval.tables import format_savings, format_series


@pytest.fixture(scope="module")
def sweep(bench_engine, emit):
    points = run_duration_sweep(
        bench_engine,
        config.CENTER_LOCATION,
        config.DURATIONS_S,
        config.DEFAULT_SETTINGS.start_time_s,
        config.DEFAULT_SETTINGS.prob,
        delta_ts=(300, 600),
        include_es=True,
    )
    emit(
        "fig41a_runtime",
        format_series(
            "Fig 4.1(a) — running time (ms) vs duration L (min)",
            points, metric="running_time_ms", x_name="L (min)",
        ),
    )
    emit(
        "fig41b_length",
        format_series(
            "Fig 4.1(b) — reachable road length (km) vs duration L (min)",
            points, metric="road_length_km", x_name="L (min)",
            value_format="{:.2f}",
        ),
    )
    emit(
        "fig41_savings",
        format_savings(
            "Fig 4.1 — SQMB+TBS saving over ES",
            points, ours="sqmb_tbs Δt=5min", baseline="ES", x_name="L (min)",
        ),
    )
    return points


def _curve(points, label):
    return {p.x: p for p in points if (p.label or p.algorithm) == label}


def test_fig41_shapes(sweep):
    ours = _curve(sweep, "sqmb_tbs Δt=5min") or {
        p.x: p for p in sweep if p.algorithm == "sqmb_tbs" and "5" in p.label
    }
    es = {p.x: p for p in sweep if p.label == "ES"}
    assert ours and es
    for minutes in ours:
        # SQMB+TBS always at least 50% cheaper than ES (paper: 50-90%).
        assert ours[minutes].running_time_ms < 0.5 * es[minutes].running_time_ms
    # Road length grows with L.
    lengths = [ours[x].road_length_km for x in sorted(ours)]
    assert lengths[-1] > lengths[0]
    # SQMB+TBS running time grows with L (bounding region expands).
    times = [ours[x].running_time_ms for x in sorted(ours)]
    assert times[-1] > times[0]


def test_fig41_length_insensitive_to_delta_t(sweep):
    d5 = {p.x: p.road_length_km for p in sweep
          if p.algorithm == "sqmb_tbs" and p.label == "Δt=5min"}
    d10 = {p.x: p.road_length_km for p in sweep
           if p.algorithm == "sqmb_tbs" and p.label == "Δt=10min"}
    for x in d5:
        if d5[x] > 1.0:
            assert d10[x] == pytest.approx(d5[x], rel=0.8)


def test_bench_sqmb_tbs_duration(bench_client, benchmark, sweep):
    query = SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        600,
        config.DEFAULT_SETTINGS.prob,
    )
    result = benchmark(lambda: s_query(bench_client, query, algorithm="sqmb_tbs"))
    assert result.segments


def test_bench_es_duration(bench_client, benchmark, sweep):
    query = SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        600,
        config.DEFAULT_SETTINGS.prob,
    )
    result = benchmark.pedantic(
        lambda: s_query(bench_client, query, algorithm="es"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.segments
