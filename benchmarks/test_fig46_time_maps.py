"""Fig 4.6: region maps at T = 01:00, 06:00, 12:00, 18:00 (Prob 80%, L 5).

Expected shape: the 18:00 (evening rush) region is the smallest; changes
concentrate on low-speed local roads while the highway skeleton stays
comparatively stable.
"""

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.trajectory.model import day_time
from repro.viz.ascii_map import render_region


def test_fig46_start_time_maps(bench_client, bench_dataset, benchmark, emit):
    network = bench_dataset.network
    results = {}
    for hour in (1, 6, 12, 18):
        query = SQuery(config.CENTER_LOCATION, day_time(hour), 300, 0.8)
        results[hour] = s_query(bench_client, query)
    benchmark(
        lambda: s_query(
            bench_client, SQuery(config.CENTER_LOCATION, day_time(12), 300, 0.8)
        )
    )
    art = []
    for hour, result in results.items():
        art.append(
            f"Fig 4.6 — T={hour:02d}:00, Prob=80%, L=5min "
            f"({len(result.segments)} segments, "
            f"{result.road_length_m(network) / 1000:.1f} km)"
        )
        art.append(render_region(result, network))
    emit("fig46_time_maps", "\n".join(art))

    lengths = {
        hour: result.road_length_m(network) for hour, result in results.items()
    }
    # 18:00 must be the smallest (or tied), as in the paper.
    assert lengths[18] <= min(lengths[1], lengths[6], lengths[12]) * 1.25
