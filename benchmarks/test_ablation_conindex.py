"""Ablation: Con-Index construction — lazy vs eager, and entry reuse.

The paper builds the Con-Index offline; this reproduction supports both
eager precomputation and lazy on-first-use materialisation.  The ablation
measures (a) the cost of precomputing one slot for the whole network,
(b) the first-touch vs warm cost of SQMB, demonstrating why sweeps reuse
memoised entries.
"""

from repro.core.con_index import ConnectionIndex
from repro.core.query import SQuery
from repro.core.sqmb import sqmb_bounding_region
from repro.eval import config
from repro.eval.tables import format_table


def test_ablation_precompute_one_slot(bench_dataset, benchmark, emit):
    def precompute():
        con = ConnectionIndex(
            bench_dataset.network,
            bench_dataset.database,
            config.DEFAULT_SETTINGS.delta_t_s,
        )
        slot = con.slot_of(config.DEFAULT_SETTINGS.start_time_s)
        built = con.precompute(slots=[slot], kinds=("far", "near"))
        return con, built

    con, built = benchmark.pedantic(precompute, rounds=1, iterations=1)
    assert built == 2 * bench_dataset.network.num_segments
    emit(
        "ablation_conindex",
        format_table(
            "Ablation — Con-Index construction",
            [
                ("entries per slot", str(built)),
                ("expansions run", str(con.expansions)),
                ("disk pages", str(con.disk.num_pages)),
            ],
        ),
    )


def test_ablation_lazy_first_touch_vs_warm(bench_dataset):
    con = ConnectionIndex(
        bench_dataset.network,
        bench_dataset.database,
        config.DEFAULT_SETTINGS.delta_t_s,
    )
    import time

    st_like_start = next(iter(bench_dataset.network.segment_ids()))
    t0 = time.perf_counter()
    sqmb_bounding_region(
        con, st_like_start, config.DEFAULT_SETTINGS.start_time_s, 1200, "far"
    )
    cold = time.perf_counter() - t0
    expansions_after_cold = con.expansions
    t0 = time.perf_counter()
    sqmb_bounding_region(
        con, st_like_start, config.DEFAULT_SETTINGS.start_time_s, 1200, "far"
    )
    warm = time.perf_counter() - t0
    assert con.expansions == expansions_after_cold  # fully memoised
    assert warm <= cold
