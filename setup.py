"""Setup shim: enables legacy `pip install -e .` in offline environments
where the `wheel` package (needed for PEP 660 editable installs) is absent.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
