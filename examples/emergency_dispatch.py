#!/usr/bin/env python3
"""Emergency dispatch analysis: who can respond within 10 minutes — really?

The paper's fourth motivating application (§1.1): a dispatcher needs to
know which parts of the city a responder at a given station can actually
cover within a deadline, at the *current* time of day and with a confidence
requirement.  A distance-based range query would answer the same circle at
03:00 and at 18:00; the data-driven reachability query does not.

The script sweeps the confidence level (Prob) and the time of day for one
station as a single streamed client batch — the requests share warm
buffer pools and deduplicated bounding regions, so the whole sweep costs
little more than one query per distinct shape.

Usage::

    python examples/emergency_dispatch.py
"""

from repro import (
    QueryOptions,
    ReachabilityClient,
    ReachabilityEngine,
    Request,
    SQuery,
    Point,
    day_time,
)
from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    build_shenzhen_like,
    demo_config,
)

STATION = Point(0.0, 0.0)
DEADLINE_S = 10 * 60
PROBS = (0.2, 0.4, 0.6, 0.8, 1.0)
HOURS = (1, 6, 8, 11, 14, 18, 21)

DEMO_CONFIG = demo_config(ShenzhenLikeConfig(
    grid_rows=7,
    grid_cols=7,
    spacing_m=2400.0,
    granularity_m=800.0,
    primary_every=3,
    num_taxis=120,
    num_days=15,
))


def main() -> None:
    print("Building dataset ...")
    dataset = build_shenzhen_like(DEMO_CONFIG)
    print(f"\nStation at {STATION.as_tuple()}, deadline "
          f"{DEADLINE_S // 60} minutes.\n")

    # One batch: the five confidence levels share one bounding region
    # (same shape), the seven start times add one region pair each.
    requests = [
        Request(
            SQuery(STATION, day_time(11), DEADLINE_S, prob),
            QueryOptions(tag=f"prob-{prob:.0%}"),
        )
        for prob in PROBS
    ]
    requests += [
        Request(
            SQuery(STATION, day_time(hour), DEADLINE_S, 0.8),
            QueryOptions(tag=f"hour-{hour}"),
        )
        for hour in HOURS
    ]
    with ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    ) as client:
        report = client.run_batch(requests)

    print("Coverage by confidence level (at 11:00):")
    print(f"  {'Prob':>6}  {'segments':>9}  {'road km':>8}")
    for prob, result in zip(PROBS, report.results[:len(PROBS)]):
        km = result.road_length_m(dataset.network) / 1000.0
        print(f"  {prob:>6.0%}  {len(result.segments):>9}  {km:>8.1f}")

    print("\nGuaranteed coverage (Prob = 80%) over the day:")
    print(f"  {'time':>6}  {'segments':>9}  {'road km':>8}")
    for hour, result in zip(HOURS, report.results[len(PROBS):]):
        km = result.road_length_m(dataset.network) / 1000.0
        print(f"  {hour:>4}:00  {len(result.segments):>9}  {km:>8.1f}")

    print(f"\nBatch cost: {report.page_reads} page reads for "
          f"{len(requests)} queries; bounding regions "
          f"{report.regions_computed} computed / {report.regions_reused} "
          "reused across the sweep.")
    print("Note the dips around 08:00 and 18:00 — rush-hour congestion "
          "shrinks what a responder can actually cover, which is exactly "
          "the effect the paper's Figs 4.5/4.6 demonstrate.")


if __name__ == "__main__":
    main()
