#!/usr/bin/env python3
"""Quickstart: build a dataset, index it, and answer a reachability query.

Runs the full pipeline on a small synthetic city in a few seconds:

1. generate a road network + 15 days of taxi trajectories;
2. build the ST-Index and Con-Index;
3. answer a single-location spatio-temporal reachability query through
   the request/response client — auto-routed (the router picks the
   paper's SQMB+TBS for this shape) and forced to the exhaustive-search
   baseline;
4. print the result region as an ASCII map and the cost comparison.

Usage::

    python examples/quickstart.py
"""

from repro import (
    QueryOptions,
    ReachabilityClient,
    ReachabilityEngine,
    Request,
    SQuery,
    Point,
    day_time,
)
from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    build_shenzhen_like,
    demo_config,
)
from repro.viz.ascii_map import render_region

DEMO_CONFIG = demo_config(ShenzhenLikeConfig(
    grid_rows=7,
    grid_cols=7,
    spacing_m=2400.0,
    granularity_m=800.0,
    primary_every=3,
    num_taxis=120,
    num_days=15,
))


def main() -> None:
    print("Building the synthetic city and taxi fleet ...")
    dataset = build_shenzhen_like(DEMO_CONFIG)
    for key, value in dataset.describe():
        print(f"  {key}: {value}")

    print("\nBuilding indexes and answering the query ...")
    query = SQuery(
        location=Point(0.0, 0.0),  # downtown
        start_time_s=day_time(11),  # 11:00
        duration_s=15 * 60,  # L = 15 minutes
        prob=0.2,  # reachable on >= 20% of days
    )
    with ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    ) as client:
        ours = client.send(Request(query))  # algorithm="auto"
        baseline = client.send(Request(query, QueryOptions(algorithm="es")))
    print(f"  {ours.route.describe()}")

    print(f"\nProb-reachable region: {len(ours.segments)} road segments, "
          f"{ours.result.road_length_m(dataset.network) / 1000.0:.1f} km of road")
    print(render_region(ours.result, dataset.network))

    print("\nCost comparison (running time = wall clock + simulated disk I/O):")
    for name, response in ((f"auto ({ours.route.algorithm})", ours),
                           ("exhaustive", baseline)):
        cost = response.cost
        print(
            f"  {name:>16}: {cost.total_cost_ms:8.0f} ms "
            f"({cost.io.page_reads} page reads, "
            f"{cost.probability_checks} probability checks)"
        )
    saving = 100.0 * (1.0 - ours.cost.total_cost_ms / baseline.cost.total_cost_ms)
    print(f"  SQMB+TBS saves {saving:.0f}% of the baseline's running time.")
    agreement = ours.segments == baseline.segments
    print(f"  Regions identical: {agreement}")


if __name__ == "__main__":
    main()
