#!/usr/bin/env python3
"""Business coverage analysis: what do three chain branches reach together?

The paper's third motivating application (§1.1): a chained business (UPS,
McDonald's, ...) wants its overall spatial coverage — the union of the
spatio-temporal reachable regions of all branches.  That is exactly an
m-query; the client's router classifies the three overlapping downtown
branches onto MQMB+TBS, which answers it far faster than running one
s-query per branch because the branches' regions overlap downtown.

Usage::

    python examples/business_coverage.py
"""

from repro import (
    MQuery,
    QueryOptions,
    ReachabilityClient,
    ReachabilityEngine,
    Request,
    Point,
    day_time,
)
from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    build_shenzhen_like,
    demo_config,
)
from repro.viz.ascii_map import render_region

BRANCHES = (
    Point(0.0, 0.0),        # flagship, downtown
    Point(3200.0, 2400.0),  # north-east branch
    Point(-2400.0, -1600.0),  # south-west branch
)

DEMO_CONFIG = demo_config(ShenzhenLikeConfig(
    grid_rows=7,
    grid_cols=7,
    spacing_m=2400.0,
    granularity_m=800.0,
    primary_every=3,
    num_taxis=120,
    num_days=15,
))


def main() -> None:
    print("Building dataset ...")
    dataset = build_shenzhen_like(DEMO_CONFIG)
    query = MQuery(
        locations=BRANCHES,
        start_time_s=day_time(10),
        duration_s=15 * 60,
        prob=0.2,
    )

    with ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    ) as client:
        print("\nAnswering the m-query (auto-routed) ...")
        merged = client.send(Request(query))
        print(f"  {merged.route.describe()}")
        print("Answering it as three independent s-queries ...")
        naive = client.send(
            Request(query, QueryOptions(algorithm="sqmb_tbs_each"))
        )

    km = merged.result.road_length_m(dataset.network) / 1000.0
    print(f"\n=== Combined coverage: {len(merged.segments)} segments, {km:.1f} km ===")
    print(render_region(merged.result, dataset.network, width=60, height=24))

    print("\nCost comparison:")
    for name, response in (("MQMB+TBS", merged), ("3 x SQMB+TBS", naive)):
        cost = response.cost
        print(
            f"  {name:>13}: {cost.total_cost_ms:8.0f} ms "
            f"({cost.io.page_reads} page reads, "
            f"{cost.probability_checks} probability checks)"
        )
    saving = 100.0 * (1.0 - merged.cost.total_cost_ms / naive.cost.total_cost_ms)
    overlap = len(merged.segments & naive.segments)
    union = len(merged.segments | naive.segments)
    print(f"  MQMB+TBS saves {saving:.0f}% by expanding the overlapping "
          f"downtown area once (region agreement {overlap}/{union}).")


if __name__ == "__main__":
    main()
