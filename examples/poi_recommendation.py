#!/usr/bin/env python3
"""Location-based recommendation + the reverse advertising query.

Two applications in one script (§1.1 applications 1 and 2):

1. **Recommendation** — a user downtown at 12:30 wants lunch within 10
   minutes; rank the restaurants she can actually reach with confidence
   (``repro.apps.recommendation`` over the shared client).
2. **Reverse advertising** — the best-ranked restaurant wants to know
   *from where* customers can reach it within 10 minutes at dinner time,
   to target coupons: one more request on the same client, with
   ``direction="reverse"`` in its options.

Usage::

    python examples/poi_recommendation.py
"""

from repro import (
    QueryOptions,
    ReachabilityClient,
    ReachabilityEngine,
    Request,
    SQuery,
    Point,
    day_time,
)
from repro.apps.recommendation import POI, recommend_pois
from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    build_shenzhen_like,
    demo_config,
)
from repro.viz.ascii_map import render_region

DEMO_CONFIG = demo_config(ShenzhenLikeConfig(
    grid_rows=7,
    grid_cols=7,
    spacing_m=2400.0,
    granularity_m=800.0,
    primary_every=3,
    num_taxis=120,
    num_days=15,
))

RESTAURANTS = [
    POI("Dim Sum Palace", Point(400.0, 300.0), "cantonese"),
    POI("Noodle Bar", Point(-700.0, 200.0), "noodles"),
    POI("Hotpot House", Point(1500.0, -900.0), "hotpot"),
    POI("Sea Breeze", Point(3200.0, 2600.0), "seafood"),
    POI("Far Farm Diner", Point(9000.0, 8500.0), "rural"),
]


def main() -> None:
    print("Building dataset ...")
    dataset = build_shenzhen_like(DEMO_CONFIG)
    with ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    ) as client:
        user = Point(0.0, 0.0)
        print("\n1) Lunch recommendation: user downtown at 12:30, 10-minute "
              "budget, 20% confidence")
        ranked = recommend_pois(
            client, user, day_time(12, 30), 10 * 60, RESTAURANTS, prob=0.2,
        )
        if not ranked:
            print("  (no restaurant reachable — try a longer budget)")
        for i, entry in enumerate(ranked, start=1):
            prob = (
                f"{entry.probability:.0%}" if entry.probability is not None
                else "interior"
            )
            print(f"  {i}. {entry.poi.name:<16} {entry.distance_m:7.0f} m "
                  f"away, reachability {prob}")
        skipped = {p.name for p in RESTAURANTS} - {r.poi.name for r in ranked}
        if skipped:
            print(f"  not reachable in time: {', '.join(sorted(skipped))}")

        if ranked:
            winner = ranked[0].poi
            print(f"\n2) Reverse advertising for {winner.name!r}: from where "
                  "can customers arrive within 10 minutes at 18:30?")
            reverse = client.send(
                Request(
                    SQuery(winner.location, day_time(18, 30), 10 * 60, 0.2),
                    QueryOptions(direction="reverse", tag="coupon-catchment"),
                )
            )
            km = reverse.result.road_length_m(dataset.network) / 1000.0
            print(f"  catchment: {len(reverse.segments)} segments, {km:.1f} "
                  "km of road — distribute coupons here:")
            print(render_region(reverse.result, dataset.network,
                                width=60, height=22))


if __name__ == "__main__":
    main()
