#!/usr/bin/env python3
"""Location-based advertising: where can customers reach the mall from?

Re-creates the paper's Fig 1.2 scenario: a shopping mall plans a coupon
campaign and wants the region from which the mall is reachable within 10
minutes — which is *time-varying*: at off-peak (13:00) the region is much
larger than during the evening rush (18:00), when congestion shrinks it.

The catchment question is the *reverse* reachability query, expressed
per request with ``QueryOptions(direction="reverse")``.  The script
answers the same query at both times, prints the two regions side by
side, and exports them as GeoJSON for a web map.

Usage::

    python examples/location_advertising.py [output_dir]
"""

import sys
from pathlib import Path

from repro import (
    QueryOptions,
    ReachabilityClient,
    ReachabilityEngine,
    Request,
    SQuery,
    Point,
    day_time,
)
from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    build_shenzhen_like,
    demo_config,
)
from repro.viz.ascii_map import render_region
from repro.viz.geojson import write_geojson

MALL_LOCATION = Point(0.0, 0.0)  # the downtown mall

DEMO_CONFIG = demo_config(ShenzhenLikeConfig(
    grid_rows=7,
    grid_cols=7,
    spacing_m=2400.0,
    granularity_m=800.0,
    primary_every=3,
    num_taxis=120,
    num_days=15,
))


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    output_dir.mkdir(parents=True, exist_ok=True)
    print("Building dataset ...")
    dataset = build_shenzhen_like(DEMO_CONFIG)
    results = {}
    with ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    ) as client:
        for label, hour in (("off-peak 13:00", 13), ("evening rush 18:00", 18)):
            response = client.send(
                Request(
                    SQuery(
                        location=MALL_LOCATION,
                        start_time_s=day_time(hour),
                        duration_s=10 * 60,
                        prob=0.2,
                    ),
                    QueryOptions(direction="reverse", tag=label),
                )
            )
            results[label] = response.result
            km = response.result.road_length_m(dataset.network) / 1000.0
            print(f"\n=== Reachable region at {label}: "
                  f"{len(response.segments)} segments, {km:.1f} km ===")
            print(render_region(response.result, dataset.network,
                                width=60, height=24))

    off_peak = results["off-peak 13:00"]
    rush = results["evening rush 18:00"]
    off_km = off_peak.road_length_m(dataset.network) / 1000.0
    rush_km = rush.road_length_m(dataset.network) / 1000.0
    print(f"\nRush-hour shrinkage: {off_km:.1f} km -> {rush_km:.1f} km "
          f"({100 * (1 - rush_km / max(off_km, 1e-9)):.0f}% smaller), "
          "matching the paper's Fig 1.2 observation.")

    for label, result in results.items():
        name = label.split()[0].replace("-", "") + ".geojson"
        path = write_geojson(result, dataset.network, output_dir / name)
        print(f"GeoJSON written: {path}")


if __name__ == "__main__":
    main()
