"""Tests for dataset persistence and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io.persist import (
    load_database,
    load_dataset,
    load_network,
    save_database,
    save_dataset,
    save_network,
)
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit
from repro.trajectory.store import TrajectoryDatabase


class TestNetworkPersistence:
    def test_roundtrip(self, tiny_network, tmp_path):
        path = save_network(tiny_network, tmp_path / "net.json")
        loaded = load_network(path)
        assert loaded.num_nodes == tiny_network.num_nodes
        assert loaded.num_segments == tiny_network.num_segments
        for seg in tiny_network.segments():
            other = loaded.segment(seg.segment_id)
            assert other.start_node == seg.start_node
            assert other.end_node == seg.end_node
            assert other.twin_id == seg.twin_id
            assert other.level == seg.level
            assert other.length == pytest.approx(seg.length)

    def test_bad_version_rejected(self, tiny_network, tmp_path):
        path = save_network(tiny_network, tmp_path / "net.json")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_network(path)


class TestDatabasePersistence:
    def make_db(self):
        db = TrajectoryDatabase(num_taxis=3, num_days=2)
        db.add(MatchedTrajectory(0, 0, 0, [
            SegmentVisit(1, 100.0, 3.5), SegmentVisit(2, 200.0, 4.5),
        ]))
        db.add(MatchedTrajectory(4, 1, 1, [SegmentVisit(7, 50.0, 2.0)]))
        db.finalize()
        return db

    def test_roundtrip(self, tmp_path):
        db = self.make_db()
        path = save_database(db, tmp_path / "db.npz")
        loaded = load_database(path)
        assert loaded.num_taxis == 3 and loaded.num_days == 2
        assert len(loaded) == 2
        original = db.get(0)
        restored = loaded.get(0)
        assert restored.segments() == original.segments()
        assert [v.time_s for v in restored.visits] == [
            v.time_s for v in original.visits
        ]
        # Speed stats recomputed identically.
        hour = int(100.0 // 3600)
        assert loaded.speed_stats(1, hour).min_mps == pytest.approx(
            db.speed_stats(1, hour).min_mps
        )

    def test_empty_database(self, tmp_path):
        db = TrajectoryDatabase(num_taxis=1, num_days=1)
        path = save_database(db, tmp_path / "empty.npz")
        loaded = load_database(path)
        assert len(loaded) == 0

    def test_suffix_added(self, tmp_path):
        db = self.make_db()
        path = save_database(db, tmp_path / "db")
        assert path.suffix == ".npz"
        assert path.exists()


class TestDatasetPersistence:
    def test_roundtrip(self, test_dataset, tmp_path):
        directory = save_dataset(test_dataset, tmp_path / "ds")
        loaded = load_dataset(directory)
        assert loaded.config == test_dataset.config
        assert loaded.network.num_segments == test_dataset.network.num_segments
        assert len(loaded.database) == len(test_dataset.database)
        assert (
            loaded.database.stats().num_visits
            == test_dataset.database.stats().num_visits
        )
        # The re-segmentation maps survive.
        assert loaded.resegmentation.piece_map == (
            test_dataset.resegmentation.piece_map
        )

    def test_loaded_dataset_answers_queries(self, test_dataset, tmp_path):
        from repro.core.engine import ReachabilityEngine
        from repro.core.query import SQuery
        from repro.spatial.geometry import Point
        from repro.trajectory.model import day_time

        directory = save_dataset(test_dataset, tmp_path / "ds")
        loaded = load_dataset(directory)
        engine = ReachabilityEngine(loaded.network, loaded.database)
        fresh = ReachabilityEngine(
            test_dataset.network, test_dataset.database
        )
        query = SQuery(Point(0, 0), day_time(11), 600, 0.2)
        assert engine.s_query(query).segments == fresh.s_query(query).segments


class TestCLI:
    @pytest.fixture(scope="class")
    def dataset_dir(self, test_dataset, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli") / "ds"
        save_dataset(test_dataset, directory)
        return str(directory)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_time_parsing(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "x", "--time", "07:30"]
        )
        assert args.time == 7 * 3600 + 30 * 60

    def test_bad_time_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "x", "--time", "notatime"]
            )

    def test_describe(self, dataset_dir, capsys):
        assert main(["describe", "--dataset", dataset_dir]) == 0
        out = capsys.readouterr().out
        assert "Number of taxis" in out

    def test_query(self, dataset_dir, capsys):
        code = main([
            "query", "--dataset", dataset_dir,
            "--x", "0", "--y", "0", "--time", "11:00",
            "--duration", "10", "--prob", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Prob-reachable region" in out
        assert "running time" in out

    def test_query_geojson_export(self, dataset_dir, tmp_path, capsys):
        out_file = tmp_path / "region.geojson"
        code = main([
            "query", "--dataset", dataset_dir, "--no-map",
            "--geojson", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        parsed = json.loads(out_file.read_text())
        assert parsed["type"] == "FeatureCollection"

    def test_mquery(self, dataset_dir, capsys):
        code = main([
            "mquery", "--dataset", dataset_dir, "--no-map",
            "--location", "0,0", "--location", "800,600",
        ])
        assert code == 0
        assert "Prob-reachable region" in capsys.readouterr().out

    def test_rquery(self, dataset_dir, capsys):
        code = main([
            "rquery", "--dataset", dataset_dir, "--no-map",
            "--x", "0", "--y", "0",
        ])
        assert code == 0
        assert "Prob-reachable region" in capsys.readouterr().out

    def test_query_explain_prints_route(self, dataset_dir, capsys):
        code = main([
            "query", "--dataset", dataset_dir, "--no-map", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "route: s-query -> 'sqmb_tbs'" in out
        assert "rule paper-s" in out

    def test_batch_streams_progress_with_directions(self, dataset_dir, capsys):
        code = main([
            "batch", "--dataset", dataset_dir,
            "--s-queries", "2", "--m-queries", "1", "--r-queries", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        progress = [line for line in out.splitlines() if line.startswith("[")]
        # One streamed progress line per request, each naming a direction.
        assert len(progress) == 4
        assert all(" forward " in p or " reverse " in p for p in progress)
        assert sum(" reverse " in p for p in progress) == 1
        assert "[  4/4]" in progress[-1]
        assert "Batch report" in out and "Bounding regions" in out

    @pytest.mark.sharded
    def test_batch_sharded_explain_and_fault_row(self, dataset_dir, capsys):
        code = main([
            "batch", "--dataset", dataset_dir,
            "--shards", "2", "--workers", "2",
            "--deadline-ms", "5000", "--max-retries", "1", "--explain",
            "--s-queries", "2", "--m-queries", "1", "--r-queries", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: sharded (2 shards, 2 worker processes" in out
        assert "deadline 5000 ms, max 1 retries" in out
        assert "route " in out  # the routing-decision histogram
        assert "Fault tolerance" in out
        assert "0 worker restarts / 0 retries / 0 degraded" in out
        assert "Shard 0" in out and "Shard 1" in out

    def test_batch_forced_algorithm_applies_per_kind(self, dataset_dir, capsys):
        """A forced algorithm covers the kinds that register it; the
        rest of the mixed workload stays auto-routed."""
        code = main([
            "batch", "--dataset", dataset_dir, "--algorithm", "sqmb_tbs",
            "--s-queries", "1", "--m-queries", "1", "--r-queries", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert " s/sqmb_tbs " in out
        assert " r/sqmb_tbs " in out
        assert " m/mqmb_tbs " in out  # auto: sqmb_tbs has no m executor

    def test_batch_unknown_algorithm_friendly_error(self, dataset_dir, capsys):
        code = main([
            "batch", "--dataset", dataset_dir, "--algorithm", "nope",
        ])
        assert code == 2
        assert "unknown algorithm 'nope'" in capsys.readouterr().err

    def test_bad_location_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mquery", "--dataset", "x", "--location", "oops"]
            )

    def test_missing_dataset_friendly_error(self, tmp_path, capsys):
        code = main([
            "query", "--dataset", str(tmp_path / "nowhere"), "--no-map",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "no dataset at" in err
        assert "build-dataset" in err

    def test_build_dataset(self, tmp_path, capsys):
        code = main([
            "build-dataset", "--out", str(tmp_path / "mini"),
            "--grid", "4", "--taxis", "3", "--days", "2",
        ])
        assert code == 0
        assert (tmp_path / "mini" / "network.json").exists()
        assert (tmp_path / "mini" / "database.npz").exists()


@pytest.mark.durability
class TestCLIDurableStore:
    """`repro save` -> `repro open` / `repro batch --open` round trip."""

    @pytest.fixture(scope="class")
    def dataset_dir(self, test_dataset, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-store") / "ds"
        save_dataset(test_dataset, directory)
        return str(directory)

    @pytest.fixture(scope="class")
    def store_dir(self, dataset_dir, tmp_path_factory):
        store = tmp_path_factory.mktemp("cli-store") / "store"
        assert main(["save", "--dataset", dataset_dir,
                     "--store", str(store)]) == 0
        return str(store)

    def test_save_reports_store(self, store_dir, capsys):
        from pathlib import Path

        capsys.readouterr()  # drop the fixture's own save output
        assert (Path(store_dir) / "disk" / "superblock.json").exists()

    def test_open_serves_cold_query(self, store_dir, capsys):
        code = main([
            "open", "--store", store_dir, "--no-map",
            "--x", "0", "--y", "0", "--time", "11:00",
            "--duration", "10", "--prob", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "opened store" in out
        assert "Prob-reachable region" in out
        assert "cold pages faulted:" in out

    def test_open_matches_dataset_query(self, dataset_dir, store_dir, capsys):
        query_args = [
            "--no-map", "--x", "0", "--y", "0", "--time", "11:00",
            "--duration", "10", "--prob", "0.2",
        ]
        assert main(["query", "--dataset", dataset_dir, *query_args]) == 0
        from_dataset = capsys.readouterr().out
        assert main(["open", "--store", store_dir, *query_args]) == 0
        from_store = capsys.readouterr().out
        line = next(
            l for l in from_dataset.splitlines() if "Prob-reachable" in l
        )
        assert line in from_store

    def test_batch_open(self, store_dir, capsys):
        code = main([
            "batch", "--open", store_dir,
            "--s-queries", "2", "--m-queries", "1", "--r-queries", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch report" in out

    def test_batch_rejects_dataset_and_open(self, dataset_dir, store_dir, capsys):
        code = main([
            "batch", "--dataset", dataset_dir, "--open", store_dir,
        ])
        assert code == 2
        assert "--open" in capsys.readouterr().err

    def test_batch_needs_some_source(self, capsys):
        assert main(["batch", "--s-queries", "1"]) == 2
        assert "--dataset" in capsys.readouterr().err

    def test_open_missing_store_friendly_error(self, tmp_path, capsys):
        code = main(["open", "--store", str(tmp_path / "nope"), "--no-map"])
        assert code == 2
        assert "cannot open store" in capsys.readouterr().err

    def test_query_disk_file_needs_path(self, dataset_dir, capsys):
        code = main([
            "query", "--dataset", dataset_dir, "--no-map", "--disk", "file",
        ])
        assert code == 2
        assert "--disk-path" in capsys.readouterr().err
