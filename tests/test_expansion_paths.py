"""Tests for time-bounded network expansion and shortest paths."""

import pytest

from repro.network.expansion import time_bounded_expansion
from repro.network.generator import grid_city
from repro.network.paths import (
    dijkstra_from_segment,
    network_distance,
    shortest_path_segments,
)


def uniform_time(seconds: float):
    return lambda sid: seconds


class TestExpansion:
    def test_negative_budget_rejected(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        with pytest.raises(ValueError):
            time_bounded_expansion(tiny_network, start, -1.0, uniform_time(1))

    def test_zero_budget_covers_start_only(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        result = time_bounded_expansion(tiny_network, start, 0.0, uniform_time(10))
        assert result.cover == {start}
        assert result.frontier == {start}

    def test_cover_grows_with_budget(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        small = time_bounded_expansion(tiny_network, start, 10.0, uniform_time(10))
        large = time_bounded_expansion(tiny_network, start, 30.0, uniform_time(10))
        assert small.cover <= large.cover
        assert len(large.cover) > len(small.cover)

    def test_arrival_times_are_hop_counts(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        result = time_bounded_expansion(tiny_network, start, 25.0, uniform_time(10))
        assert result.arrival[start] == 0.0
        for segment, arrival in result.arrival.items():
            assert arrival in (0.0, 10.0, 20.0)

    def test_impassable_blocks(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))

        def travel(sid: int) -> float:
            return float("inf") if sid != start else 1.0

        result = time_bounded_expansion(tiny_network, start, 100.0, travel)
        assert result.cover == {start}

    def test_frontier_members_have_escape(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        result = time_bounded_expansion(tiny_network, start, 20.0, uniform_time(10))
        for segment in result.frontier:
            succs = tiny_network.successors(segment)
            assert not succs or any(s not in result.cover for s in succs)

    def test_interior_members_fully_inside(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        result = time_bounded_expansion(tiny_network, start, 40.0, uniform_time(10))
        interior = result.cover - result.frontier
        for segment in interior:
            assert all(
                s in result.cover for s in tiny_network.successors(segment)
            )

    def test_whole_network_reached_with_big_budget(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        result = time_bounded_expansion(
            tiny_network, start, 1e9, uniform_time(1.0)
        )
        assert len(result.cover) == tiny_network.num_segments


class TestDijkstra:
    def test_distance_to_self_zero(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        assert network_distance(tiny_network, start, start) == 0.0

    def test_default_cost_is_length(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        dist = dijkstra_from_segment(tiny_network, start)
        succ = tiny_network.successors(start)[0]
        assert dist[succ] == pytest.approx(tiny_network.segment(succ).length)

    def test_max_cost_limits(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        capped = dijkstra_from_segment(tiny_network, start, max_cost=600.0)
        assert all(d <= 600.0 for d in capped.values())
        full = dijkstra_from_segment(tiny_network, start)
        assert len(full) > len(capped)

    def test_targets_early_exit(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        full = dijkstra_from_segment(tiny_network, start)
        far = max(full, key=full.get)
        partial = dijkstra_from_segment(tiny_network, start, targets={far})
        assert partial[far] == full[far]

    def test_triangle_inequality_over_network(self, tiny_network):
        sids = sorted(tiny_network.segment_ids())
        a, b, c = sids[0], sids[7], sids[15]
        ab = network_distance(tiny_network, a, b)
        bc = network_distance(tiny_network, b, c)
        ac = network_distance(tiny_network, a, c)
        assert ac <= ab + bc + 1e-6


class TestShortestPath:
    def test_path_to_self(self, tiny_network):
        start = next(iter(tiny_network.segment_ids()))
        assert shortest_path_segments(tiny_network, start, start) == [start]

    def test_path_is_connected_and_minimal(self, tiny_network):
        sids = sorted(tiny_network.segment_ids())
        start, end = sids[0], sids[-1]
        path = shortest_path_segments(tiny_network, start, end)
        assert path is not None
        assert path[0] == start and path[-1] == end
        for a, b in zip(path, path[1:]):
            assert b in tiny_network.successors(a)
        cost = sum(tiny_network.segment(s).length for s in path[1:])
        assert cost == pytest.approx(network_distance(tiny_network, start, end))

    def test_unreachable_returns_none(self):
        # Two disconnected one-way islands.
        from repro.network.model import RoadNetwork, RoadSegment
        from repro.spatial.geometry import Point

        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (10, 0), (100, 0), (110, 0)]):
            net.add_node(i, Point(x, y))
        net.add_segment(RoadSegment(0, 0, 1, (Point(0, 0), Point(10, 0))))
        net.add_segment(RoadSegment(1, 2, 3, (Point(100, 0), Point(110, 0))))
        assert shortest_path_segments(net, 0, 1) is None

    def test_infinite_cost_blocks(self, tiny_network):
        sids = sorted(tiny_network.segment_ids())
        start, end = sids[0], sids[-1]

        def cost(sid: int) -> float:
            return float("inf") if sid == end else tiny_network.segment(sid).length

        assert shortest_path_segments(tiny_network, start, end, cost=cost) is None
