"""Kernel-equivalence tests: CSR expansion vs the classic set/heap code.

The vectorized kernels of :mod:`repro.network.csr` must produce *identical*
covers, boundaries and seed assignments to the legacy implementations kept
in :mod:`repro.core.legacy_expansion`, on randomized networks, for all
three bounding strategies (SQMB / MQMB / reverse) and both Near and Far
kinds — that is the contract that lets the query algorithms swap the hot
path without changing any query result.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.con_index import ConnectionIndex
from repro.core.legacy_expansion import (
    mqmb_bounding_region_reference,
    reverse_bounding_region_reference,
    slot_aware_expansion_reference,
    sqmb_bounding_region_reference,
    time_bounded_expansion_reference,
)
from repro.core.mqmb import mqmb_bounding_region
from repro.core.reverse import reverse_bounding_region
from repro.core.sqmb import slot_aware_expansion, sqmb_bounding_region
from repro.network.expansion import time_bounded_expansion
from repro.network.generator import grid_city, random_planar_city, ring_radial_city
from repro.trajectory.model import (
    SECONDS_PER_DAY,
    MatchedTrajectory,
    SegmentVisit,
    day_time,
)
from repro.trajectory.store import TrajectoryDatabase


def make_network(kind: str, seed: int):
    if kind == "grid":
        return grid_city(rows=5, cols=5, spacing=500.0, primary_every=2, seed=seed)
    if kind == "ring":
        return ring_radial_city(rings=3, spokes=6, ring_spacing=600.0, seed=seed)
    return random_planar_city(num_nodes=40, extent=3000.0, seed=seed)


def random_database(network, seed: int, num_days: int = 3) -> TrajectoryDatabase:
    """Random walks with random speeds at several hours (incl. near midnight)."""
    rng = random.Random(seed)
    segment_ids = sorted(network.segment_ids())
    db = TrajectoryDatabase(num_taxis=8, num_days=num_days)
    trajectory_id = 0
    for date in range(num_days):
        for hour in (0, 7, 11, 23):
            for _ in range(3):
                current = rng.choice(segment_ids)
                t = day_time(hour) + rng.uniform(0, 600)
                visits = []
                for _ in range(rng.randint(5, 25)):
                    speed = rng.uniform(1.5, 14.0)
                    visits.append(
                        SegmentVisit(current, min(t, SECONDS_PER_DAY - 1), speed)
                    )
                    successors = network.successors(current)
                    if not successors:
                        break
                    current = rng.choice(successors)
                    t += network.segment(current).length / speed
                db.add(
                    MatchedTrajectory(trajectory_id, trajectory_id % 8, date, visits)
                )
                trajectory_id += 1
    db.finalize()
    return db


def assert_regions_equal(actual, reference):
    assert actual.cover == reference.cover
    assert actual.boundary == reference.boundary
    assert actual.seed_of == reference.seed_of


@pytest.mark.parametrize("topology", ["grid", "ring", "planar"])
class TestTimeBoundedExpansion:
    def test_matches_reference_random_costs(self, topology):
        network = make_network(topology, seed=11)
        rng = random.Random(42)
        segment_ids = sorted(network.segment_ids())
        cost_of = {
            sid: (float("inf") if rng.random() < 0.1 else rng.uniform(5.0, 120.0))
            for sid in segment_ids
        }
        for reverse in (False, True):
            for budget in (0.0, 90.0, 300.0, 1200.0):
                start = rng.choice(segment_ids)
                new = time_bounded_expansion(
                    network, start, budget, cost_of.__getitem__, reverse=reverse
                )
                old = time_bounded_expansion_reference(
                    network, start, budget, cost_of.__getitem__, reverse=reverse
                )
                assert new.arrival == old.arrival
                assert new.frontier == old.frontier

    def test_vector_and_callable_paths_agree(self, topology):
        network = make_network(topology, seed=5)
        csr = network.csr()
        rng = np.random.default_rng(7)
        vector = rng.uniform(10.0, 200.0, csr.n)
        vector[rng.random(csr.n) < 0.15] = np.inf
        start = int(csr.ids[0])
        via_vector = time_bounded_expansion(network, start, 600.0, vector)
        via_callable = time_bounded_expansion(
            network, start, 600.0,
            lambda sid: float(vector[csr.row_of(sid)]),
        )
        assert via_vector.arrival == via_callable.arrival
        assert via_vector.frontier == via_callable.frontier


@pytest.mark.parametrize("topology", ["grid", "ring", "planar"])
@pytest.mark.parametrize("seed", [1, 2])
class TestStrategyEquivalence:
    """All three bounding strategies, Near and Far, on randomized data."""

    @pytest.fixture()
    def con(self, topology, seed):
        network = make_network(topology, seed=seed)
        database = random_database(network, seed=seed * 13)
        return ConnectionIndex(network, database, delta_t_s=300)

    # Start times cover mid-day, an oddly aligned time, and the midnight
    # wrap (T + L crosses SECONDS_PER_DAY).
    START_TIMES = (day_time(11), 7 * 3600 + 123.0, SECONDS_PER_DAY - 400.0)

    def test_slot_aware_expansion_matches_reference(self, con, topology, seed):
        rng = random.Random(seed)
        segment_ids = sorted(con.network.segment_ids())
        for start_time in self.START_TIMES:
            seeds = sorted(rng.sample(segment_ids, 2))
            for kind in ("far", "near", "far_rev"):
                new = slot_aware_expansion(con, seeds, start_time, 900.0, kind)
                old = slot_aware_expansion_reference(
                    con, seeds, start_time, 900.0, kind
                )
                assert new == old

    def test_sqmb_matches_reference(self, con, topology, seed):
        rng = random.Random(seed + 100)
        segment_ids = sorted(con.network.segment_ids())
        for start_time in self.START_TIMES:
            start = rng.choice(segment_ids)
            for kind in ("far", "near"):
                for duration in (200.0, 900.0):
                    assert_regions_equal(
                        sqmb_bounding_region(con, start, start_time, duration, kind),
                        sqmb_bounding_region_reference(
                            con, start, start_time, duration, kind
                        ),
                    )

    def test_mqmb_matches_reference(self, con, topology, seed):
        rng = random.Random(seed + 200)
        segment_ids = sorted(con.network.segment_ids())
        for start_time in self.START_TIMES:
            seeds = rng.sample(segment_ids, 3)
            for kind in ("far", "near"):
                assert_regions_equal(
                    mqmb_bounding_region(con, seeds, start_time, 900.0, kind),
                    mqmb_bounding_region_reference(
                        con, seeds, start_time, 900.0, kind
                    ),
                )

    def test_reverse_matches_reference(self, con, topology, seed):
        rng = random.Random(seed + 300)
        segment_ids = sorted(con.network.segment_ids())
        for start_time in self.START_TIMES:
            target = rng.choice(segment_ids)
            for kind in ("far", "near"):
                assert_regions_equal(
                    reverse_bounding_region(con, target, start_time, 900.0, kind),
                    reverse_bounding_region_reference(
                        con, target, start_time, 900.0, kind
                    ),
                )


class TestForcedKernelPath:
    """The adaptive scalar fast path normally serves small test networks;
    force the pure vectorized kernel (and the scalar-to-kernel handoff)
    and re-check equivalence so both execution paths stay covered."""

    @pytest.fixture()
    def con(self):
        network = make_network("grid", seed=6)
        database = random_database(network, seed=21)
        return ConnectionIndex(network, database, delta_t_s=300)

    def test_pure_kernel_equivalence(self, con, monkeypatch):
        import repro.network.csr as csr_mod
        import repro.network.expansion as expansion_mod

        monkeypatch.setattr(csr_mod, "SCALAR_PATH_MAX_N", 0)
        monkeypatch.setattr(expansion_mod, "SCALAR_PATH_MAX_N", 0)
        segment_ids = sorted(con.network.segment_ids())
        start = segment_ids[len(segment_ids) // 2]
        T = float(day_time(11))
        for kind in ("far", "near"):
            assert_regions_equal(
                sqmb_bounding_region(con, start, T, 900.0, kind),
                sqmb_bounding_region_reference(con, start, T, 900.0, kind),
            )
        new = slot_aware_expansion(con, [start], T, 900.0, "far")
        old = slot_aware_expansion_reference(con, [start], T, 900.0, "far")
        assert new == old
        vector = con.travel_time_vector("far", con.slot_of(T))
        a = time_bounded_expansion(con.network, start, 900.0, vector)
        b = time_bounded_expansion_reference(
            con.network, start, 900.0, con.travel_time("far", con.slot_of(T))
        )
        assert a.arrival == b.arrival
        assert a.frontier == b.frontier

    def test_escalation_handoff_equivalence(self, con, monkeypatch):
        """Covers larger than the escalation threshold cross the
        scalar-to-kernel handoff mid-expansion; force a tiny threshold so
        even small covers exercise it."""
        import repro.network.csr as csr_mod

        monkeypatch.setattr(csr_mod, "ESCALATE_COVER", 3)
        segment_ids = sorted(con.network.segment_ids())
        start = segment_ids[0]
        T = float(day_time(11))
        for kind in ("far", "near"):
            assert_regions_equal(
                sqmb_bounding_region(con, start, T, 1200.0, kind),
                sqmb_bounding_region_reference(con, start, T, 1200.0, kind),
            )
        new = slot_aware_expansion(con, [start], T, 1200.0, "far")
        old = slot_aware_expansion_reference(con, [start], T, 1200.0, "far")
        assert new == old


class TestCSRView:
    def test_csr_matches_adjacency(self):
        network = grid_city(rows=4, cols=4, spacing=500.0, primary_every=0, seed=1)
        csr = network.csr()
        for row, segment_id in enumerate(csr.ids.tolist()):
            lo, hi = csr.indptr_out[row], csr.indptr_out[row + 1]
            succ = sorted(csr.ids_of(csr.indices_out[lo:hi]).tolist())
            assert succ == sorted(network.successors(segment_id))
            lo, hi = csr.indptr_in[row], csr.indptr_in[row + 1]
            pred = sorted(csr.ids_of(csr.indices_in[lo:hi]).tolist())
            assert pred == sorted(network.predecessors(segment_id))
            twin = network.segment(segment_id).twin_id
            twin_row = int(csr.twin_row[row])
            if twin is None:
                assert twin_row == -1
            else:
                assert int(csr.ids[twin_row]) == twin

    def test_csr_invalidated_on_topology_change(self):
        from repro.network.model import RoadSegment
        from repro.spatial.geometry import Point

        network = grid_city(rows=3, cols=3, spacing=500.0, primary_every=0, seed=2)
        before = network.csr()
        node_a = network.next_node_id()
        network.add_node(node_a, Point(9999.0, 9999.0))
        node_b = network.next_node_id()
        network.add_node(node_b, Point(9999.0, 9500.0))
        network.add_segment(
            RoadSegment(
                segment_id=network.next_segment_id(),
                start_node=node_a,
                end_node=node_b,
                shape=(Point(9999.0, 9999.0), Point(9999.0, 9500.0)),
            )
        )
        after = network.csr()
        assert after is not before
        assert after.n == before.n + 1

    def test_travel_time_caches_follow_topology_change(self):
        """Cached per-hour cost vectors are tied to the CSR view: adding a
        segment rebuilds them at the new row count instead of feeding a
        stale shorter vector into the kernel."""
        from repro.core.con_index import ConnectionIndex
        from repro.network.model import RoadSegment
        from repro.spatial.geometry import Point
        from repro.trajectory.store import TrajectoryDatabase

        network = grid_city(rows=3, cols=3, spacing=500.0, primary_every=0, seed=2)
        database = random_database(network, seed=5)
        con = ConnectionIndex(network, database, delta_t_s=300)
        before = con.travel_time_vector("far", 0)
        assert before.size == network.csr().n
        node_a = network.next_node_id()
        network.add_node(node_a, Point(9000.0, 9000.0))
        node_b = network.next_node_id()
        network.add_node(node_b, Point(9000.0, 8500.0))
        network.add_segment(
            RoadSegment(
                segment_id=network.next_segment_id(),
                start_node=node_a,
                end_node=node_b,
                shape=(Point(9000.0, 9000.0), Point(9000.0, 8500.0)),
            )
        )
        after = con.travel_time_vector("far", 0)
        assert after.size == network.csr().n == before.size + 1
        assert len(con.travel_time_list("far", 0)) == after.size
