"""FileBackedDisk: backend equivalence, store round trips, freshness.

The durable backend must be indistinguishable from :class:`SimulatedDisk`
to everything above the storage tier — same query answers, same
page-granular :class:`DiskStats` accounting (lazy fault-ins are not
charged) — while adding crash-safe persistence underneath.  The crash
and corruption matrices live in ``test_durability.py``; this file covers
the sunny-day contract plus the persistence-format regressions.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.core.st_index import STIndex
from repro.io.persist import (
    PersistFormatError,
    load_st_index,
    open_store,
    save_st_index,
    save_store,
)
from repro.network.generator import grid_city
from repro.spatial.geometry import Point
from repro.storage.backends import (
    DISK_BACKENDS,
    FileBackedDisk,
    create_disk,
)
from repro.storage.disk import DiskError, SimulatedDisk
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))


@pytest.fixture()
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


def make_day(route, day, traj_id):
    return MatchedTrajectory(
        trajectory_id=traj_id, taxi_id=traj_id % 5, date=day,
        visits=[SegmentVisit(route[i], T + 10 + 30 * i, 6.0)
                for i in range(len(route))],
    )


@pytest.fixture()
def route(network):
    path = [0]
    while len(path) < 4:
        path.append(network.successors(path[-1])[0])
    return path


def make_database(route, days=3):
    db = TrajectoryDatabase(num_taxis=5, num_days=days)
    for day in range(days):
        db.add(make_day(route, day, day))
    db.finalize()
    return db


class TestBackendEquivalence:
    def test_create_disk_registry(self, tmp_path):
        assert DISK_BACKENDS == ("sim", "file")
        sim = create_disk("sim", page_size=512)
        assert type(sim) is SimulatedDisk
        filed = create_disk("file", path=tmp_path / "d", page_size=512)
        assert isinstance(filed, FileBackedDisk)
        with pytest.raises(ValueError):
            create_disk("file")  # path required
        with pytest.raises(ValueError):
            create_disk("ramcloud")

    def test_same_answers_same_accounting(self, network, route, tmp_path):
        db = make_database(route)
        disks = {
            "sim": SimulatedDisk(page_size=1024),
            "file": FileBackedDisk(tmp_path / "store", page_size=1024),
        }
        results, stats = {}, {}
        query = SQuery(Point(0, 0), T, 600, 0.3)
        for name, disk in disks.items():
            engine = ReachabilityEngine(network, db, disk=disk)
            engine.st_index(300)
            with pytest.warns(DeprecationWarning):
                results[name] = engine.s_query(query)
            stats[name] = disk.snapshot()
        assert results["sim"].segments == results["file"].segments
        # Page-granular accounting identical: fault-ins are uncharged.
        assert stats["sim"] == stats["file"]

    def test_index_reads_identical(self, network, route, tmp_path):
        db = make_database(route)
        sim_index = STIndex(network, 300, disk=SimulatedDisk(page_size=512))
        sim_index.build(db)
        file_index = STIndex(
            network, 300, disk=FileBackedDisk(tmp_path / "s", page_size=512)
        )
        file_index.build(db)
        slot = sim_index.slot_of(T)
        for seg in set(route):
            assert sim_index.time_list(seg, slot) == file_index.time_list(seg, slot)

    def test_from_state_rejected(self, tmp_path):
        with pytest.raises(DiskError, match="create_from_state"):
            FileBackedDisk.from_state(b"", [], page_size=512)


class TestStoreRoundTrip:
    @pytest.fixture()
    def saved(self, test_dataset, tmp_path):
        engine = ReachabilityEngine(test_dataset.network, test_dataset.database)
        store = tmp_path / "store"
        save_store(engine, store, 300)
        return store, engine

    @pytest.fixture()
    def dataset_route(self, test_dataset):
        network = test_dataset.network
        path = [0]
        while len(path) < 4:
            path.append(network.successors(path[-1])[0])
        return path

    def test_query_equivalence_and_lazy_faulting(self, saved):
        store, engine = saved
        query = SQuery(Point(0, 0), T, 600, 0.2)
        with pytest.warns(DeprecationWarning):
            expected = engine.s_query(query)
        reopened = open_store(store)
        with pytest.warns(DeprecationWarning):
            got = reopened.s_query(query)
        assert expected.segments  # non-trivial query on the real dataset
        assert got.segments == expected.segments
        disk = reopened.disk
        assert isinstance(disk, FileBackedDisk)
        # Cold start touched only the pages the query needed.
        assert 0 < disk.pages_faulted < disk.num_pages

    def test_append_durable_across_reopen(self, saved, dataset_route):
        store, _ = saved
        route = dataset_route
        new_day = 12  # outside the dataset's 10 days: unambiguous marker
        engine = open_store(store)
        index = engine.st_index(300)
        slot = index.slot_of(T)
        before = index.time_list(route[0], slot)
        engine.append_trajectories(
            [make_day(route, new_day, 7)], update_database=False
        )
        after = index.time_list(route[0], slot)
        assert set(after) == set(before) | {new_day}
        # No checkpoint ran: the append lives in the journal only.
        assert engine.disk.journal_record_count > 0

        fresh = open_store(store)
        replayed = fresh.st_index(300).time_list(route[0], slot)
        assert replayed == after

    def test_double_open_idempotent(self, saved, dataset_route):
        store, _ = saved
        engine = open_store(store)
        engine.append_trajectories(
            [make_day(dataset_route, 13, 9)], update_database=False
        )
        slot_lists = {}
        for attempt in range(2):
            reopened = open_store(store)
            index = reopened.st_index(300)
            slot = index.slot_of(T)
            slot_lists[attempt] = {
                seg: index.time_list(seg, slot) for seg in set(dataset_route)
            }
            assert reopened.disk.journal_record_count == engine.disk.journal_record_count
        assert slot_lists[0] == slot_lists[1]

    def test_in_place_resave_page_stable(self, saved, dataset_route):
        store, _ = saved
        engine = open_store(store)
        pages_before = engine.disk.num_pages
        engine.append_trajectories(
            [make_day(dataset_route, 14, 11)], update_database=False
        )
        save_store(engine, store, 300)  # in-place: checkpoint, no re-export
        assert engine.disk.journal_record_count == 0  # folded into snapshot
        reopened = open_store(store)
        assert reopened.disk.num_pages == engine.disk.num_pages
        # Page count grew only by the appended tail, not a rewrite.
        assert reopened.disk.num_pages >= pages_before

    def test_readonly_open_serves_but_never_writes(self, saved):
        store, _ = saved
        engine = open_store(store, readonly=True)
        query = SQuery(Point(0, 0), T, 600, 0.3)
        with pytest.warns(DeprecationWarning):
            assert engine.s_query(query).segments
        disk = engine.disk
        assert isinstance(disk, FileBackedDisk)
        disk.commit(meta=b"ignored")  # no-op, not an error
        assert disk.journal_record_count == 0
        with pytest.raises(DiskError):
            disk.checkpoint()

    def test_open_missing_store_rejected(self, tmp_path):
        with pytest.raises(PersistFormatError, match="incomplete|missing"):
            open_store(tmp_path / "nowhere")


class TestExportStateAtomicity:
    def test_export_state_is_atomic_under_writes(self, tmp_path):
        """Barrier-style race regression: export_state must hold the lock
        for its whole scan, so a concurrent writer can never produce a
        half-old half-new export."""
        disk = SimulatedDisk(page_size=64)
        disk.allocate(64)
        marker = {"stop": False}
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            for round_no in range(200):
                payload = bytes([round_no % 256]) * 64
                for page in range(64):
                    disk.write_page(page, payload)

        thread = threading.Thread(target=writer)
        thread.start()
        barrier.wait()
        try:
            for _ in range(50):
                buffer, used = disk.export_state()
                pages = [
                    buffer[i * 64 : i * 64 + used[i]] for i in range(64)
                ]
                seen = {p for p in pages if p}
                # All non-empty pages written so far carry one writer
                # round each; an export observing a torn *page* would
                # show a value no round ever wrote.  Stronger: every
                # page is byte-uniform.
                for page in seen:
                    assert len(set(page)) <= 1
        finally:
            marker["stop"] = True
            thread.join()

    def test_rl001_flags_unlocked_export_state(self, tmp_path):
        """Gate proof: stripping the lock off export_state fails RL001."""
        import shutil

        from tools.repro_lint.core import run_paths

        from tests.test_repro_lint import REPO_ROOT

        dest = tmp_path / "src"
        shutil.copytree(REPO_ROOT / "src", dest)
        disk_py = dest / "repro" / "storage" / "disk.py"
        text = disk_py.read_text(encoding="utf-8")
        needle = "with self._lock:\n            self._ensure_resident_locked(0, len(self._used))"
        assert needle in text
        text = text.replace(
            needle,
            "if True:\n            self._ensure_resident_locked(0, len(self._used))",
            1,
        )
        disk_py.write_text(text, encoding="utf-8")
        _, findings = run_paths([str(dest)])
        assert any(
            f.rule == "RL001" and "export_state" in f.message for f in findings
        )


class TestPersistFormatErrors:
    @pytest.fixture()
    def st_index_file(self, network, route, tmp_path):
        index = STIndex(network, 300, disk=SimulatedDisk(page_size=512))
        index.build(make_database(route))
        path = tmp_path / "index.npz"
        save_st_index(index, path)
        return path, index

    def test_round_trip_still_works(self, st_index_file, network, route):
        path, index = st_index_file
        loaded = load_st_index(path, network)
        slot = index.slot_of(T)
        for seg in set(route):
            assert loaded.time_list(seg, slot) == index.time_list(seg, slot)

    def test_truncated_file_rejected(self, st_index_file, network):
        path, _ = st_index_file
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistFormatError):
            load_st_index(path, network)

    def test_garbage_bytes_rejected(self, st_index_file, network):
        path, _ = st_index_file
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(PersistFormatError):
            load_st_index(path, network)

    def test_future_version_rejected(self, st_index_file, network):
        path, _ = st_index_file
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(PersistFormatError, match="unsupported ST-Index format"):
            load_st_index(path, network)

    def test_missing_array_rejected(self, st_index_file, network):
        path, _ = st_index_file
        data = dict(np.load(path))
        data.pop("dir_first_page")
        np.savez_compressed(path, **data)
        with pytest.raises(PersistFormatError):
            load_st_index(path, network)

    def test_missing_file_still_file_not_found(self, network, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_st_index(tmp_path / "absent.npz", network)
