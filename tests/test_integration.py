"""End-to-end integration tests: raw GPS -> pipeline -> indexes -> queries.

Exercises the whole Fig 2.2 framework in one flow, plus cross-cutting
properties of the query system on the shared test dataset.
"""

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery, SQuery
from repro.network.generator import grid_city
from repro.preprocessing.pipeline import PreprocessingPipeline
from repro.spatial.geometry import Point
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline_engine(self):
        """Raw GPS through map matching into a queryable engine."""
        network = grid_city(rows=4, cols=4, spacing=900.0, primary_every=2, seed=3)
        fleet = FleetConfig(
            num_taxis=6, num_days=4,
            day_start_s=10 * 3600.0, day_end_s=12 * 3600.0,
        )
        generator = TaxiFleetGenerator(network, config=fleet)
        raws = [raw for raw, _ in generator.generate_raw()]
        pipeline = PreprocessingPipeline(network, granularity_m=450.0)
        database = pipeline.run(raws, num_taxis=6, num_days=4)
        return ReachabilityEngine(pipeline.network, database)

    def test_query_after_map_matching(self, pipeline_engine):
        query = SQuery(CENTER, day_time(10, 30), 600, 0.25)
        ours = pipeline_engine.s_query(query)
        baseline = pipeline_engine.s_query(query, algorithm="es")
        assert baseline.segments - ours.segments == set()

    def test_m_query_after_map_matching(self, pipeline_engine):
        query = MQuery(
            (CENTER, Point(900.0, 900.0)), day_time(10, 30), 600, 0.25
        )
        result = pipeline_engine.m_query(query)
        assert isinstance(result.segments, set)


class TestCrossCuttingProperties:
    """Invariants over a grid of query parameters on the test dataset."""

    @pytest.mark.parametrize("hour", [6, 11, 18])
    @pytest.mark.parametrize("prob", [0.2, 0.6])
    def test_nested_probability_regions(self, engine, hour, prob):
        base = engine.s_query(SQuery(CENTER, day_time(hour), 600, prob))
        stricter = engine.s_query(
            SQuery(CENTER, day_time(hour), 600, min(1.0, prob + 0.3))
        )
        # Probability nesting is exact for ES; TBS adds the unverified min
        # cover to both, so nesting holds up to that shared floor.
        floor = base.min_region.cover if base.min_region else set()
        assert stricter.segments - base.segments <= floor

    @pytest.mark.parametrize("delta_t", [300, 600])
    def test_tbs_sound_at_every_delta_t(self, engine, delta_t):
        """At any granularity, TBS finds what ES finds at that granularity.

        (Δt itself shifts the absolute result on sparse data because the
        first-slot window [T, T+Δt] widens; the paper's "Δt has no impact"
        observation presumes a dense fleet and is checked by the Fig 4.7
        benchmark on the full dataset instead.)
        """
        query = SQuery(CENTER, day_time(11), 1200, 0.2)
        ours = engine.s_query(query, delta_t_s=delta_t)
        baseline = engine.s_query(query, algorithm="es", delta_t_s=delta_t)
        assert baseline.segments - ours.segments == set()
        assert ours.segments - baseline.segments <= ours.min_region.cover

    def test_es_baseline_cost_flat_in_prob(self, engine):
        costs = []
        for prob in (0.2, 0.6, 1.0):
            result = engine.s_query(
                SQuery(CENTER, day_time(11), 600, prob), algorithm="es"
            )
            costs.append(result.cost.probability_checks)
        assert max(costs) == min(costs)  # verifies everything regardless

    def test_sqmb_cheaper_io_than_es(self, engine):
        query = SQuery(CENTER, day_time(11), 600, 0.2)
        ours = engine.s_query(query)
        baseline = engine.s_query(query, algorithm="es")
        assert ours.cost.io.page_reads < baseline.cost.io.page_reads

    def test_rush_hour_shrinks_region(self, engine, test_dataset):
        midday = engine.s_query(SQuery(CENTER, day_time(13), 600, 0.2))
        rush = engine.s_query(SQuery(CENTER, day_time(18), 600, 0.2))
        midday_km = midday.road_length_m(test_dataset.network)
        rush_km = rush.road_length_m(test_dataset.network)
        assert rush_km <= midday_km * 1.2  # rush never meaningfully bigger

    def test_identical_query_identical_result(self, engine):
        query = SQuery(CENTER, day_time(11), 900, 0.4)
        first = engine.s_query(query)
        second = engine.s_query(query)
        assert first.segments == second.segments
        assert first.probabilities == second.probabilities
