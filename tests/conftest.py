"""Shared fixtures: small networks and a session-scoped test dataset.

The full benchmark dataset takes ~30 s to build; tests use
``TEST_CONFIG`` (a 5x5 city, 25 taxis, 10 days) which builds in about a
second and is cached for the whole session.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ReachabilityEngine
from repro.datasets.shenzhen_like import (
    TEST_CONFIG,
    ShenzhenLikeDataset,
    default_dataset,
)
from repro.network.generator import grid_city
from repro.network.model import RoadNetwork


@pytest.fixture()
def tiny_network() -> RoadNetwork:
    """A fresh 4x4 grid city, 500 m spacing (96 directed segments)."""
    return grid_city(rows=4, cols=4, spacing=500.0, primary_every=0, seed=1)


@pytest.fixture(scope="session")
def test_dataset() -> ShenzhenLikeDataset:
    """The small synthetic dataset, built once per session."""
    return default_dataset(TEST_CONFIG)


@pytest.fixture(scope="session")
def engine(test_dataset: ShenzhenLikeDataset) -> ReachabilityEngine:
    """A query engine over the test dataset with the 5-min index built."""
    eng = ReachabilityEngine(test_dataset.network, test_dataset.database)
    eng.st_index(300)
    return eng
