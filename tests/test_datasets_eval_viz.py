"""Tests for the dataset builder, evaluation harness, and visualisation."""

import json

import pytest

from repro.core.query import SQuery
from repro.datasets.shenzhen_like import (
    TEST_CONFIG,
    ShenzhenLikeConfig,
    build_shenzhen_like,
    default_dataset,
)
from repro.eval.metrics import (
    region_area_km2,
    region_road_length_km,
    saving_percent,
)
from repro.eval.runner import run_duration_sweep, run_location_count_sweep
from repro.eval.tables import format_series, format_table
from repro.eval.workload import QueryWorkload
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time
from repro.viz.ascii_map import render_region
from repro.viz.geojson import region_to_geojson, write_geojson

CENTER = Point(0.0, 0.0)
T = day_time(11)


class TestDatasetBuilder:
    def test_test_config_shape(self, test_dataset):
        cfg = test_dataset.config
        assert cfg == TEST_CONFIG
        assert test_dataset.num_segments > 0
        assert len(test_dataset.database) == cfg.num_taxis * cfg.num_days

    def test_default_dataset_cached(self, test_dataset):
        assert default_dataset(TEST_CONFIG) is test_dataset

    def test_describe_rows(self, test_dataset):
        rows = dict(test_dataset.describe())
        assert "City size" in rows
        assert "Number of taxis" in rows
        assert f"{TEST_CONFIG.num_taxis:,} unique taxis" in rows["Number of taxis"]

    def test_deterministic_rebuild(self):
        tiny = TEST_CONFIG.scaled(num_taxis=3, num_days=2)
        a = build_shenzhen_like(tiny)
        b = build_shenzhen_like(tiny)
        assert a.database.stats().num_visits == b.database.stats().num_visits

    def test_scaled_override(self):
        cfg = ShenzhenLikeConfig().scaled(num_taxis=5)
        assert cfg.num_taxis == 5
        assert cfg.num_days == ShenzhenLikeConfig().num_days

    def test_network_matches_resegmentation(self, test_dataset):
        assert test_dataset.network is test_dataset.resegmentation.network
        test_dataset.network.check_invariants()


class TestMetrics:
    def test_road_length(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        km = region_road_length_km(result, test_dataset.network)
        assert km == pytest.approx(result.road_length_m(test_dataset.network) / 1000)

    def test_area(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 900, 0.2))
        area = region_area_km2(result, test_dataset.network)
        assert area >= 0

    def test_saving_percent(self):
        assert saving_percent(50, 100) == pytest.approx(50.0)
        assert saving_percent(100, 100) == pytest.approx(0.0)
        assert saving_percent(10, 0) == 0.0


class TestRunner:
    def test_duration_sweep_structure(self, engine):
        points = run_duration_sweep(
            engine, CENTER, (300, 600), T, 0.2, delta_ts=(300,), include_es=True
        )
        # 2 durations x (1 sqmb curve + ES)
        assert len(points) == 4
        algorithms = {p.algorithm for p in points}
        assert algorithms == {"sqmb_tbs", "es"}
        for p in points:
            assert p.running_time_ms > 0
            assert p.road_length_km >= 0

    def test_location_sweep_structure(self, engine):
        locations = (CENTER, Point(1000.0, 500.0), Point(-800.0, 700.0))
        points = run_location_count_sweep(
            engine, locations, (1, 3), T, duration_s=600
        )
        assert len(points) == 4
        labels = {p.label for p in points}
        assert labels == {"m-query", "s-query"}


class TestTables:
    def test_format_table(self):
        text = format_table("Dataset", [("taxis", "25"), ("days", "10")])
        assert "Dataset" in text
        assert "taxis" in text and "25" in text

    def test_format_series(self, engine):
        points = run_duration_sweep(
            engine, CENTER, (300, 600), T, 0.2, delta_ts=(300,), include_es=True
        )
        text = format_series("Fig", points, metric="running_time_ms", x_name="L")
        assert "Fig" in text
        assert "ES" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 2  # title + header + 2 x-values


class TestWorkload:
    def test_s_queries_deterministic(self, test_dataset):
        w1 = QueryWorkload(test_dataset.network, seed=5)
        w2 = QueryWorkload(test_dataset.network, seed=5)
        assert w1.s_queries(5)[0].location == w2.s_queries(5)[0].location

    def test_s_queries_within_city(self, test_dataset):
        workload = QueryWorkload(test_dataset.network)
        bounds = test_dataset.network.bounds()
        for query in workload.s_queries(20):
            assert bounds.contains_point(query.location)

    def test_m_queries_shape(self, test_dataset):
        workload = QueryWorkload(test_dataset.network)
        queries = workload.m_queries(3, locations_per_query=4)
        assert len(queries) == 3
        assert all(len(q.locations) == 4 for q in queries)

    def test_fixed_start_time(self, test_dataset):
        workload = QueryWorkload(test_dataset.network)
        for query in workload.s_queries(5, start_time_s=T):
            assert query.start_time_s == T


class TestViz:
    def test_geojson_structure(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 900, 0.2))
        geo = region_to_geojson(result, test_dataset.network)
        assert geo["type"] == "FeatureCollection"
        kinds = {f["geometry"]["type"] for f in geo["features"]}
        assert "LineString" in kinds
        if len(result.segments) >= 3:
            assert "Polygon" in kinds
        for feature in geo["features"]:
            if feature["geometry"]["type"] == "LineString":
                lon, lat = feature["geometry"]["coordinates"][0]
                assert 113 < lon < 115 and 21 < lat < 24

    def test_geojson_probability_property(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2), algorithm="es")
        geo = region_to_geojson(result, test_dataset.network, include_hull=False)
        probs = [
            f["properties"].get("probability") for f in geo["features"]
        ]
        assert any(p is not None for p in probs)

    def test_write_geojson(self, engine, test_dataset, tmp_path):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        path = write_geojson(result, test_dataset.network, tmp_path / "r.geojson")
        parsed = json.loads(path.read_text())
        assert parsed["type"] == "FeatureCollection"

    def test_ascii_map(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 900, 0.2))
        art = render_region(result, test_dataset.network, width=40, height=16)
        lines = art.splitlines()
        assert len(lines) == 17  # grid + legend
        assert all(len(line) == 40 for line in lines[:16])
        flat = "".join(lines[:16])
        assert "@" in flat  # start marker
        if result.segments:
            assert "#" in flat or "+" in flat
