"""The sharded-serving failure matrix, driven by deterministic faults.

Every scenario injects a :class:`~repro.serving.FaultPlan` (counter-
keyed, no sleeps, no real crashes) and asserts the tentpole guarantees:

* a worker killed mid-batch is respawned and the retry succeeds, with
  the batch's results **bit-identical** to the single-process oracle and
  the I/O windows still summing exactly;
* a sub-batch that exhausts its retries degrades to the dispatcher-local
  fallback — same results, exact ``DiskStats``, ``degraded_requests``
  accounted;
* a hung worker's deadline fires and its late reply is discarded by
  request id, never merged;
* a respawned worker serves the *next* batch identically;
* the same fault plan produces the same supervision counters twice.

Each cell runs on real spawn-context worker processes (marked both
``sharded`` and ``serving_faults`` — the CI chaos lane runs the latter).
"""

from __future__ import annotations

import pytest

from repro.api.client import ReachabilityClient
from repro.core.service import QueryService
from repro.serving import (
    CORRUPT_FRAME,
    DELAY_RESPONSE,
    DROP_FRAME,
    KILL_BEFORE_RECV,
    RAISE_IN_SERVE,
    FaultPlan,
    FaultSpec,
    ShardedEngine,
)
from repro.serving.faults import KILL_IN_RUN
from repro.serving.faults import (
    FAULT_EXIT_CODE,
    FaultInjector,
    describe_plan,
    validate_plan,
)
from repro.storage.disk import DiskStats
from test_serving import fresh_engine, mixed_requests

pytestmark = [pytest.mark.sharded, pytest.mark.serving_faults]


def oracle_report(test_dataset, requests):
    with ReachabilityClient(fresh_engine(test_dataset)) as client:
        return client.run_batch(requests, max_workers=1)


def assert_matches_oracle(report, baseline, decomposed):
    """The existing equivalence contract: segments/starts always equal;
    probabilities and regions equal for every request that ran verbatim
    on one shard (decomposed parts may compute different — equally
    valid — shell probabilities)."""
    assert len(report.results) == len(baseline.results)
    for seq, (expected, actual) in enumerate(
        zip(baseline.results, report.results)
    ):
        assert actual.segments == expected.segments
        assert actual.start_segments == expected.start_segments
        if seq not in decomposed:
            assert actual.probabilities == expected.probabilities
            if expected.max_region is not None:
                assert actual.max_region.cover == expected.max_region.cover


def assert_exact_io(report):
    """Shard windows (degraded ones included) sum to the batch window;
    the workloads here are fully in-contract so there is no extra
    fallback term."""
    shard_sum = sum((s.io for s in report.shard_reports), DiskStats())
    assert shard_sum == report.io
    assert report.simulated_io_ms == pytest.approx(
        sum(s.simulated_io_ms for s in report.shard_reports)
    )


# -- plan plumbing (no processes) -------------------------------------------


class TestFaultPlanUnit:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(ValueError, match="trigger count"):
            FaultSpec(kind=DROP_FRAME, at=0)

    def test_validate_plan_rejects_unknown_worker(self):
        plan = FaultPlan.of(FaultSpec(kind=DROP_FRAME, worker=5))
        with pytest.raises(ValueError, match="worker 5"):
            validate_plan(plan, num_workers=2)
        validate_plan(plan, num_workers=6)  # in range: fine
        validate_plan(None, num_workers=0)  # no plan: fine

    def test_engine_ctor_validates_plan(self, test_dataset):
        plan = FaultPlan.of(FaultSpec(kind=DROP_FRAME, worker=9))
        with pytest.raises(ValueError, match="worker 9"):
            ShardedEngine(
                fresh_engine(test_dataset), shards=2, fault_plan=plan
            )

    def test_incarnation_filtering(self):
        always = FaultSpec(kind=DROP_FRAME, worker=1, incarnation=None)
        first = FaultSpec(kind=DROP_FRAME, worker=1, incarnation=0)
        plan = FaultPlan.of(always, first)
        assert plan.for_worker(1, 0) == (always, first)
        assert plan.for_worker(1, 3) == (always,)
        assert plan.for_worker(0, 0) == ()

    def test_injector_counters_deterministic(self):
        plan = FaultPlan.of(
            FaultSpec(kind=DROP_FRAME, worker=0, at=2),
            FaultSpec(kind=RAISE_IN_SERVE, worker=0, at=3),
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan, worker=0, incarnation=0)
            fired = []
            for _ in range(4):
                injector.on_recv()
                fired.append(tuple(injector.on_run()))
            runs.append(fired)
        assert runs[0] == runs[1]
        assert runs[0] == [(), (DROP_FRAME,), (RAISE_IN_SERVE,), ()]

    def test_describe_plan(self):
        assert describe_plan(None) == "no injected faults"
        plan = FaultPlan.of(
            FaultSpec(kind=KILL_BEFORE_RECV, worker=1, incarnation=None)
        )
        text = describe_plan(plan)
        assert "kill_before_recv" in text and "worker1" in text


# -- the matrix (real worker processes) -------------------------------------


def test_kill_mid_batch_retry_succeeds(test_dataset):
    """Acceptance scenario: one worker dies mid-batch, the supervisor
    respawns it, the retry answers, and the merged batch is bit-identical
    to the single-process oracle with exact summed I/O."""
    requests = mixed_requests(test_dataset.network)
    baseline = oracle_report(test_dataset, requests)
    plan = FaultPlan.of(FaultSpec(kind=KILL_IN_RUN, worker=0, at=1))
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)), shards=2, fault_plan=plan
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
        # the kill really happened: the incarnation-0 process received
        # the scatter and died, and the serving worker is incarnation 1
        assert sharded._workers[0].incarnation == 1
    assert report.worker_restarts == 1
    assert report.retries == 1
    assert report.degraded_requests == 0
    assert_matches_oracle(report, baseline, set(dispatch.decomposed))
    assert_exact_io(report)
    restarted = [s for s in report.shard_reports if s.worker_restarts]
    assert restarted  # the fault shows up on the owning shard's row


def test_retries_exhausted_degrades_to_local_fallback(test_dataset):
    """A worker that dies on *every* incarnation exhausts its retries;
    its sub-batch re-executes on the dispatcher-local fallback with
    results identical to the oracle and exact DiskStats accounting."""
    requests = mixed_requests(test_dataset.network, 6, 2)
    baseline = oracle_report(test_dataset, requests)
    plan = FaultPlan.of(
        FaultSpec(kind=KILL_IN_RUN, worker=0, at=1, incarnation=None)
    )
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)),
        shards=2,
        fault_plan=plan,
        max_retries=1,
        retry_backoff_s=0.0,
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
    assert_matches_oracle(report, baseline, set(dispatch.decomposed))
    assert_exact_io(report)
    # worker 0 hosts shard 0: every one of its sub-requests degraded
    expected_degraded = len(dispatch.per_shard[0])
    assert expected_degraded > 0
    assert report.degraded_requests == expected_degraded
    by_shard = {s.shard_id: s for s in report.shard_reports}
    assert by_shard[0].degraded_requests == expected_degraded
    assert by_shard[1].degraded_requests == 0  # healthy worker unaffected
    assert report.retries == 1  # the bounded budget, fully spent
    assert report.worker_restarts == 2  # initial death + retry death
    # the degraded shard's window equals a fresh single-process engine
    # running exactly that sub-batch: degradation preserves the oracle
    # accounting, not just the totals
    sub_requests = [request for _, _, request in dispatch.per_shard[0]]
    degraded_oracle = oracle_report(test_dataset, sub_requests)
    assert by_shard[0].io == degraded_oracle.io


def test_hung_worker_deadline_fires_and_late_frame_discarded(test_dataset):
    """DELAY_RESPONSE parks the first reply until after the dispatcher's
    deadline fired and retried: the late frame must be discarded by
    request id (counted, never merged) and the retry's answer used."""
    requests = mixed_requests(test_dataset.network, 6, 2)
    baseline = oracle_report(test_dataset, requests)
    plan = FaultPlan.of(FaultSpec(kind=DELAY_RESPONSE, worker=0, at=1))
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)),
        shards=2,
        fault_plan=plan,
        deadline_ms=250.0,
        retry_backoff_s=0.0,
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
        # the worker never died — it was merely late
        assert sharded._workers[0].incarnation == 0
    assert report.retries >= 1
    assert report.stale_frames >= 1
    assert report.worker_restarts == 0
    assert report.degraded_requests == 0
    assert report.deadline_ms == 250.0
    assert_matches_oracle(report, baseline, set(dispatch.decomposed))
    assert_exact_io(report)


def test_error_reply_retries_on_same_worker(test_dataset):
    """RAISE_IN_SERVE answers MSG_ERROR; the worker stays trusted (it
    replied coherently) and the retry on the same process succeeds."""
    requests = mixed_requests(test_dataset.network, 6, 2)
    baseline = oracle_report(test_dataset, requests)
    plan = FaultPlan.of(FaultSpec(kind=RAISE_IN_SERVE, worker=0, at=1))
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)),
        shards=2,
        fault_plan=plan,
        retry_backoff_s=0.0,
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
        assert sharded._workers[0].incarnation == 0  # no respawn
    assert report.retries == 1
    assert report.worker_restarts == 0
    assert_matches_oracle(report, baseline, set(dispatch.decomposed))
    assert_exact_io(report)


def test_corrupt_frame_respawns_and_retry_succeeds(test_dataset):
    """A reply that fails frame validation means the pipe can no longer
    be trusted: the supervisor respawns and the retry succeeds."""
    requests = mixed_requests(test_dataset.network, 6, 2)
    baseline = oracle_report(test_dataset, requests)
    plan = FaultPlan.of(FaultSpec(kind=CORRUPT_FRAME, worker=0, at=1))
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)),
        shards=2,
        fault_plan=plan,
        retry_backoff_s=0.0,
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
        assert sharded._workers[0].incarnation == 1
    assert report.worker_restarts == 1
    assert report.retries == 1
    assert_matches_oracle(report, baseline, set(dispatch.decomposed))
    assert_exact_io(report)


def test_respawned_worker_serves_next_batch_identically(test_dataset):
    """Kill a worker *between* batches (before its second recv): the
    liveness check respawns it at the next dispatch and the respawned
    engine answers the second batch exactly like the oracle."""
    batch1 = mixed_requests(test_dataset.network, 4, 1, seed=17)
    batch2 = mixed_requests(test_dataset.network, 4, 1, seed=23)
    baseline2 = oracle_report(test_dataset, batch2)
    plan = FaultPlan.of(FaultSpec(kind=KILL_BEFORE_RECV, worker=0, at=2))
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)), shards=2, fault_plan=plan
    ) as sharded:
        report1 = sharded.run_batch(batch1)
        assert report1.worker_restarts == 0  # batch 1 was served healthy
        victim = sharded._workers[0].process
        victim.join(timeout=30)  # dies right after replying batch 1
        assert victim.exitcode == FAULT_EXIT_CODE
        report2 = sharded.run_batch(batch2)
        dispatch2 = sharded.plan_dispatch(batch2)
        assert sharded._workers[0].incarnation == 1
    assert report2.worker_restarts == 1
    assert report2.retries == 0  # respawned before dispatch, not after
    assert_matches_oracle(report2, baseline2, set(dispatch2.decomposed))
    assert_exact_io(report2)


def test_fault_plan_determinism(test_dataset):
    """Same plan, same workload, fresh engines: identical supervision
    counters and identical merged results on both runs."""
    requests = mixed_requests(test_dataset.network, 5, 2)
    plan = FaultPlan.of(
        FaultSpec(kind=KILL_IN_RUN, worker=0, at=1),
        FaultSpec(kind=RAISE_IN_SERVE, worker=1, at=1),
    )
    outcomes = []
    for _ in range(2):
        with ShardedEngine(
            QueryService(fresh_engine(test_dataset)),
            shards=2,
            fault_plan=plan,
            retry_backoff_s=0.0,
        ) as sharded:
            report = sharded.run_batch(requests)
        outcomes.append(
            (
                report.worker_restarts,
                report.retries,
                report.degraded_requests,
                report.stale_frames,
                [r.segments for r in report.results],
                report.io,
            )
        )
    assert outcomes[0] == outcomes[1]


def test_fault_machinery_off_by_default(test_dataset):
    """No plan, no faults: a healthy batch reports all-zero supervision
    counters (the hot path's bookkeeping is observation-only)."""
    requests = mixed_requests(test_dataset.network, 4, 1)
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)), shards=2
    ) as sharded:
        report = sharded.run_batch(requests)
    assert report.worker_restarts == 0
    assert report.retries == 0
    assert report.degraded_requests == 0
    assert report.stale_frames == 0
    assert report.deadline_ms is not None  # the default deadline is armed
