"""Tests for reverse reachability queries."""

import pytest

from repro.core.query import SQuery
from repro.core.reverse import (
    ReverseProbabilityEstimator,
    reverse_bounding_region,
)
from repro.core.st_index import STIndex
from repro.network.expansion import time_bounded_expansion
from repro.network.generator import grid_city
from repro.spatial.geometry import Point
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

CENTER = Point(0.0, 0.0)
T = float(day_time(11))
NUM_DAYS = 4


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


@pytest.fixture(scope="module")
def route(network):
    start = network.nearest_segment_linear(CENTER)

    def extend(path, seen):
        if len(path) == 5:
            return path
        for succ in network.successors(path[-1]):
            road = network.segment(succ).canonical_id()
            if road in seen:
                continue
            found = extend(path + [succ], seen | {road})
            if found:
                return found
        return None

    return extend([start], {network.segment(start).canonical_id()})


@pytest.fixture(scope="module")
def index(network, route):
    """Taxis drive route[0] -> route[4] on days 0..2; day 3 is empty near it."""
    db = TrajectoryDatabase(num_taxis=NUM_DAYS, num_days=NUM_DAYS)
    for day in range(NUM_DAYS):
        if day == 3:
            visits = [SegmentVisit(route[4], T + 5, 6.0)]
        else:
            visits = [
                SegmentVisit(route[i], T + 5 + 40 * i, 6.0) for i in range(5)
            ]
        db.add(MatchedTrajectory(day, day, day, visits))
    db.finalize()
    index = STIndex(network, 300)
    index.build(db)
    return index


class TestReverseEstimator:
    def test_invalid_days(self, index, route):
        with pytest.raises(ValueError):
            ReverseProbabilityEstimator(index, route[4], T, 600, 0)

    def test_target_days(self, index, route):
        est = ReverseProbabilityEstimator(index, route[4], T, 600, NUM_DAYS)
        assert est.start_days == NUM_DAYS  # some visit every day

    def test_origin_probability(self, index, route):
        """route[0] can reach route[4] on 3 of 4 days."""
        est = ReverseProbabilityEstimator(index, route[4], T, 600, NUM_DAYS)
        assert est.probability(route[0]) == pytest.approx(3 / 4)

    def test_target_reaches_itself(self, index, route):
        est = ReverseProbabilityEstimator(index, route[4], T, 600, NUM_DAYS)
        assert est.probability(route[4]) == pytest.approx(1.0)

    def test_unrelated_origin_zero(self, index, route, network):
        est = ReverseProbabilityEstimator(index, route[4], T, 600, NUM_DAYS)
        clean = next(
            sid for sid in network.segment_ids()
            if sid not in route and network.segment(sid).twin_id not in route
        )
        assert est.probability(clean) == 0.0

    def test_caching_and_twin(self, index, route, network):
        est = ReverseProbabilityEstimator(index, route[4], T, 600, NUM_DAYS)
        value = est.probability(route[0])
        checks = est.checks
        twin = network.segment(route[0]).twin_id
        assert est.probability(twin) == pytest.approx(value)
        assert est.checks == checks


class TestReverseExpansion:
    def test_reverse_mirror_of_forward(self, network):
        """On a symmetric two-way grid, the backward cover from X equals the
        forward cover from X's twin (paths reverse along twins)."""
        start = network.nearest_segment_linear(CENTER)
        twin = network.segment(start).twin_id
        forward = time_bounded_expansion(network, twin, 200.0, lambda s: 80.0)
        backward = time_bounded_expansion(
            network, start, 200.0, lambda s: 80.0, reverse=True
        )
        forward_roads = {
            network.segment(s).canonical_id() for s in forward.cover
        }
        backward_roads = {
            network.segment(s).canonical_id() for s in backward.cover
        }
        assert forward_roads == backward_roads


class TestReverseQuery:
    def test_bad_kind(self, engine):
        con = engine.con_index(300)
        with pytest.raises(ValueError):
            reverse_bounding_region(con, 0, T, 600, kind="sideways")

    def test_reverse_region_contains_upstream(self, engine, test_dataset):
        """Forward ES agreement: r is in the reverse region of S iff S is in
        the forward region of r (same probability formula both ways)."""
        query = SQuery(CENTER, T, 600, 0.2)
        reverse_es = engine.r_query(query, algorithm="es")
        ours = engine.r_query(query, algorithm="sqmb_tbs")
        assert reverse_es.segments - ours.segments == set()
        over = ours.segments - reverse_es.segments
        assert over <= ours.min_region.cover

    def test_reverse_dual_of_forward(self, engine, test_dataset):
        """Spot-check duality through the raw estimators."""
        from repro.core.probability import ProbabilityEstimator

        st = engine.st_index(300)
        target = st.find_start_segment(CENTER)
        reverse_est = ReverseProbabilityEstimator(st, target, T, 600, 10)
        # Pick an origin the reverse query claims reachable-from.
        query = SQuery(CENTER, T, 600, 0.2)
        region = engine.r_query(query, algorithm="es").segments
        if not region:
            pytest.skip("empty reverse region")
        origin = sorted(region)[0]
        forward_est = ProbabilityEstimator(st, origin, T, 600, 10)
        assert forward_est.probability(target) == pytest.approx(
            reverse_est.probability(origin)
        )

    def test_reverse_query_engine_api(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        result = engine.r_query(query)
        assert isinstance(result.segments, set)
        assert result.cost.wall_time_s > 0
        with pytest.raises(ValueError):
            engine.r_query(query, algorithm="magic")

    def test_reverse_cheaper_than_reverse_es(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        ours = engine.r_query(query)
        baseline = engine.r_query(query, algorithm="es")
        assert ours.cost.io.page_reads < baseline.cost.io.page_reads
