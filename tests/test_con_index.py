"""Tests for the Connection Index (§3.2.2)."""

import pytest

from repro.core.con_index import (
    ConnectionIndex,
    FrontierEntry,
    decode_entry,
    encode_entry,
)
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


@pytest.fixture(scope="module")
def database(network):
    """Every segment observed at hour 11 with speed 6 m/s (uniform city)."""
    db = TrajectoryDatabase(num_taxis=4, num_days=2)
    t = float(day_time(11))
    visits = [
        SegmentVisit(sid, t + i, 6.0)
        for i, sid in enumerate(sorted(network.segment_ids()))
    ]
    db.add(MatchedTrajectory(0, 0, 0, visits))
    db.finalize()
    return db


class TestEntryCodec:
    def test_roundtrip(self):
        entry = FrontierEntry(frontier=(3, 1, 2), cover=frozenset({1, 2, 3, 9}))
        decoded = decode_entry(encode_entry(entry))
        assert decoded.frontier == (1, 2, 3)
        assert decoded.cover == {1, 2, 3, 9}

    def test_empty(self):
        entry = FrontierEntry(frontier=(), cover=frozenset())
        assert decode_entry(encode_entry(entry)) == entry


class TestConnectionIndex:
    def test_bad_delta_t(self, network, database):
        with pytest.raises(ValueError):
            ConnectionIndex(network, database, 0)

    def test_far_superset_of_near(self, network, database):
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        for sid in list(network.segment_ids())[:10]:
            far = con.far(sid, slot)
            near = con.near(sid, slot)
            assert near.cover <= far.cover

    def test_cover_contains_start(self, network, database):
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        entry = con.far(0, slot)
        assert 0 in entry.cover
        assert set(entry.frontier) <= entry.cover

    def test_uniform_speed_cover_radius(self, network, database):
        # 600 m at 6 m/s = 100 s per segment; Δt=300 s -> 3 hops.
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        entry = con.far(0, slot)
        from repro.network.expansion import time_bounded_expansion

        expected = time_bounded_expansion(
            network, 0, 300.0, lambda sid: 100.0
        )
        assert entry.cover == expected.cover

    def test_unobserved_slot_impassable(self, network, database):
        # No data at hour 3 (and neighbours): only the start remains.
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(3))
        entry = con.far(0, slot)
        assert entry.cover == {0}

    def test_memoized_entry_identical(self, network, database):
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        first = con.far(0, slot)
        expansions = con.expansions
        second = con.far(0, slot)
        assert second == first
        assert con.expansions == expansions  # cached, no recompute

    def test_entry_survives_decoded_cache_eviction(self, network, database):
        con = ConnectionIndex(network, database, 300, entry_cache_size=1)
        slot = con.slot_of(day_time(11))
        first = con.far(0, slot)
        con.far(1, slot)  # evicts the decoded entry for segment 0
        again = con.far(0, slot)
        assert again == first
        assert con.expansions == 2  # re-read from disk, not re-expanded

    def test_slot_wraps_modulo_day(self, network, database):
        con = ConnectionIndex(network, database, 300)
        entry_a = con.entry(0, 5, "far")
        entry_b = con.entry(0, 5 + con.num_slots, "far")
        assert entry_a == entry_b

    def test_precompute_counts(self, network, database):
        con = ConnectionIndex(network, database, 300)
        built = con.precompute(segment_ids=[0, 1], slots=[0, 1], kinds=("far",))
        assert built == 4
        assert con.num_entries == 4

    def test_near_uses_min_speed(self, network):
        # Two observations: slow 1 m/s and fast 12 m/s.
        db = TrajectoryDatabase(num_taxis=2, num_days=1)
        t = float(day_time(11))
        segs = sorted(network.segment_ids())
        db.add(MatchedTrajectory(0, 0, 0, [SegmentVisit(s, t, 1.0) for s in segs]))
        db.add(MatchedTrajectory(1, 1, 0, [SegmentVisit(s, t + 1, 12.0) for s in segs]))
        db.finalize()
        con = ConnectionIndex(network, db, 300)
        slot = con.slot_of(t)
        near = con.near(0, slot)
        far = con.far(0, slot)
        # 600 m at 1 m/s = 600 s > 300 s: near cover is just the start.
        assert near.cover == {0}
        # 600 m at 12 m/s = 50 s: far cover reaches 6 hops.
        assert len(far.cover) > 10


class TestTravelTimeCacheLocking:
    """Regression tests for RL001 fixes: the travel-time caches are
    mutated under ``_entry_lock`` (they are cleared under that lock by
    ``invalidate_entries``, so unlocked fills could resurrect stale
    vectors or publish a half-built cache to another thread)."""

    def test_vector_fill_holds_entry_lock(self, network, database):
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        # A fill that runs while another thread already holds the entry
        # lock must wait for it rather than racing the cache dict.
        acquired = con._entry_lock.acquire(blocking=False)
        assert acquired
        try:
            order: list[str] = []
            import threading

            def fill():
                con.travel_time_vector("far", slot)
                order.append("filled")

            t = threading.Thread(target=fill)
            t.start()
            t.join(timeout=0.2)
            # Still blocked: the lock is held here.
            assert order == []
        finally:
            con._entry_lock.release()
        t.join(timeout=5)
        assert order == ["filled"]

    def test_concurrent_fill_and_invalidate(self, network, database):
        import threading

        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        expected = con.travel_time_vector("far", slot).copy()
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    vec = con.travel_time_vector("far", slot)
                    values = con.travel_time_list("far", slot)
                    assert len(values) == vec.shape[0]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def invalidator():
            try:
                for _ in range(50):
                    con.invalidate_entries()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=invalidator))
        for t in threads:
            t.start()
        threads[-1].join()
        stop.set()
        for t in threads[:-1]:
            t.join()
        assert errors == []
        assert con.travel_time_vector("far", slot).tolist() == expected.tolist()

    def test_entry_path_is_reentrant(self, network, database):
        # entry() holds the lock while _compute() resolves travel times,
        # which re-enter the same RLock.
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        with con._entry_lock:
            entry = con.entry(0, slot, "far")
        assert 0 in entry.cover

    def test_num_entries_locked_read(self, network, database):
        con = ConnectionIndex(network, database, 300)
        slot = con.slot_of(day_time(11))
        con.entry(0, slot, "far")
        assert con.num_entries == 1
