"""Columnar probability-kernel equivalence tests.

The vectorized Eq. 3.1 path (:mod:`repro.core.prob_kernel`, the wave-based
TBS/ES) must produce *identical* probabilities, result regions, examined
counts, ``checks`` counters and page-read accounting to the scalar
reference kept in :mod:`repro.core.legacy_probability`, on randomized
datasets — twin merging, midnight-crossing windows, sub-slot durations,
multi-seed m-query fallback and all four executor families included.
That is the contract that lets the hot path swap without changing any
query result or any cost the paper's evaluation reports.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from test_expansion_kernel import make_network, random_database

from repro.core.engine import ReachabilityEngine
from repro.core.legacy_probability import (
    LegacyProbabilityEstimator,
    LegacyReverseProbabilityEstimator,
    exhaustive_search_reference,
    legacy_probability_path,
    trace_back_search_reference,
)
from repro.core.baseline import exhaustive_search, exhaustive_search_pruned
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, SQuery
from repro.core.reverse import ReverseProbabilityEstimator
from repro.core.st_index import (
    STIndex,
    decode_time_list,
    decode_time_list_columns,
    encode_time_list,
)
from repro.core.tbs import trace_back_search
from repro.spatial.geometry import Point
from repro.storage.serialization import SerializationError
from repro.trajectory.model import SECONDS_PER_DAY, day_time

# Mid-day, sub-slot duration, and a window wrapping past midnight.
WINDOWS = (
    (float(day_time(11)), 900.0),
    (float(day_time(7)) + 123.0, 200.0),
    (SECONDS_PER_DAY - 400.0, 900.0),
)


def build_index(network, database, delta_t_s: int = 300) -> STIndex:
    index = STIndex(network, delta_t_s)
    index.build(database)
    return index


class TestColumnarDecode:
    def test_columns_match_dict_decode(self):
        per_date = {
            3: [(1, 10), (2, 20), (2, 25)],
            7: [(5, 100)],
            9: [],
        }
        payload = encode_time_list(per_date)
        columns = decode_time_list_columns(payload)
        reference = decode_time_list(payload)
        expected = [
            ((date << 32) | tid, second)
            for date in sorted(reference)
            for tid, second in reference[date]
        ]
        assert list(zip(columns.keys.tolist(), columns.seconds.tolist())) \
            == expected

    def test_empty_and_malformed(self):
        assert decode_time_list_columns(encode_time_list({})).num_visits == 0
        with pytest.raises(SerializationError):
            decode_time_list_columns(b"\x01\x00\x00")
        payload = encode_time_list({1: [(2, 10), (3, 20)]})
        with pytest.raises(SerializationError):
            decode_time_list_columns(payload[:-4])
        with pytest.raises(SerializationError):
            decode_time_list_columns(payload + b"\x00\x00\x00\x00")


@pytest.mark.parametrize("topology", ["grid", "ring", "planar"])
@pytest.mark.parametrize("seed", [1, 2])
class TestEstimatorEquivalence:
    """Kernel vs scalar estimator on randomized trajectory data."""

    @pytest.fixture()
    def setting(self, topology, seed):
        network = make_network(topology, seed=seed)
        database = random_database(network, seed=seed * 17)
        return network, database, build_index(network, database)

    def test_forward_probabilities_match(self, setting, topology, seed):
        network, database, index = setting
        rng = random.Random(seed)
        segment_ids = sorted(network.segment_ids())
        for start_time, duration in WINDOWS:
            start = rng.choice(segment_ids)
            new = ProbabilityEstimator(
                index, start, start_time, duration, database.num_days
            )
            old = LegacyProbabilityEstimator(
                index, start, start_time, duration, database.num_days
            )
            assert new.start_days == old.start_days
            for segment_id in segment_ids:
                assert new.probability(segment_id) == old.probability(
                    segment_id
                ), (start_time, duration, segment_id)
            assert new.checks == old.checks

    def test_reverse_probabilities_match(self, setting, topology, seed):
        network, database, index = setting
        rng = random.Random(seed + 50)
        segment_ids = sorted(network.segment_ids())
        for start_time, duration in WINDOWS:
            target = rng.choice(segment_ids)
            new = ReverseProbabilityEstimator(
                index, target, start_time, duration, database.num_days
            )
            old = LegacyReverseProbabilityEstimator(
                index, target, start_time, duration, database.num_days
            )
            assert new.start_days == old.start_days
            for segment_id in segment_ids:
                assert new.probability(segment_id) == old.probability(
                    segment_id
                )
            assert new.checks == old.checks

    def test_batch_matches_scalar_calls(self, setting, topology, seed):
        """One probabilities() call == per-id probability() calls, with
        duplicate ids and twin pairs in the batch."""
        network, database, index = setting
        rng = random.Random(seed + 99)
        segment_ids = sorted(network.segment_ids())
        start_time, duration = WINDOWS[0]
        start = rng.choice(segment_ids)
        batch: list[int] = []
        for segment_id in rng.sample(segment_ids, min(20, len(segment_ids))):
            batch.append(segment_id)
            twin = network.segment(segment_id).twin_id
            if twin is not None and network.has_segment(twin):
                batch.append(twin)  # twin pair in one wave
        batch.extend(batch[:5])  # duplicates
        batched = ProbabilityEstimator(
            index, start, start_time, duration, database.num_days
        )
        scalar = ProbabilityEstimator(
            index, start, start_time, duration, database.num_days
        )
        values = batched.probabilities(batch)
        assert values == [scalar.probability(s) for s in batch]
        assert batched.checks == scalar.checks

    def test_forced_kernel_and_scalar_paths_agree(
        self, setting, topology, seed, monkeypatch
    ):
        """The adaptive threshold only picks a path; both are exact."""
        import repro.core.prob_kernel as kernel_mod

        network, database, index = setting
        segment_ids = sorted(network.segment_ids())
        start = segment_ids[len(segment_ids) // 2]
        start_time, duration = WINDOWS[0]

        monkeypatch.setattr(kernel_mod, "SCALAR_EVAL_MAX_VISITS", 0)
        forced_kernel = ProbabilityEstimator(
            index, start, start_time, duration, database.num_days
        )
        kernel_values = forced_kernel.probabilities(segment_ids)
        assert forced_kernel.scalar_evals == 0

        monkeypatch.setattr(kernel_mod, "SCALAR_EVAL_MAX_VISITS", 10**9)
        forced_scalar = ProbabilityEstimator(
            index, start, start_time, duration, database.num_days
        )
        scalar_values = forced_scalar.probabilities(segment_ids)
        assert forced_scalar.kernel_evals == 0
        assert kernel_values == scalar_values


@pytest.mark.parametrize("topology", ["grid", "planar"])
@pytest.mark.parametrize("seed", [3, 4])
class TestSearchEquivalence:
    """Wave-based TBS/ES vs the scalar FIFO references."""

    @pytest.fixture()
    def engine(self, topology, seed):
        network = make_network(topology, seed=seed)
        database = random_database(network, seed=seed * 23)
        return ReachabilityEngine(network, database)

    def assert_same_search(self, a, b):
        assert a.region == b.region
        assert a.failed == b.failed
        assert a.probabilities == b.probabilities
        assert a.examined == b.examined

    def test_trace_back_waves_match_reference(self, engine, topology, seed):
        from repro.core.executors import ExecutionContext

        st = engine.st_index(300)
        database = engine.database
        rng = random.Random(seed)
        segment_ids = sorted(engine.network.segment_ids())
        context = ExecutionContext(engine, 300)
        for start_time, duration in WINDOWS:
            start = rng.choice(segment_ids)
            maximum = context.bounding_region(
                "sqmb", (start,), start_time, duration, "far"
            )
            minimum = context.bounding_region(
                "sqmb", (start,), start_time, duration, "near"
            )
            for prob in (0.05, 0.3):
                new = trace_back_search(
                    engine.network,
                    {start: ProbabilityEstimator(
                        st, start, start_time, duration, database.num_days
                    )},
                    prob, maximum, minimum,
                )
                old = trace_back_search_reference(
                    engine.network,
                    {start: LegacyProbabilityEstimator(
                        st, start, start_time, duration, database.num_days
                    )},
                    prob, maximum, minimum,
                )
                self.assert_same_search(new, old)
                assert new.passed == old.passed

    def test_exhaustive_waves_match_reference(self, engine, topology, seed):
        st = engine.st_index(300)
        database = engine.database
        rng = random.Random(seed + 7)
        segment_ids = sorted(engine.network.segment_ids())
        start = rng.choice(segment_ids)
        start_time, duration = WINDOWS[0]
        from repro.core.legacy_probability import (
            exhaustive_search_pruned_reference,
        )

        for search, reference in (
            (exhaustive_search, exhaustive_search_reference),
            (exhaustive_search_pruned, exhaustive_search_pruned_reference),
        ):
            new = search(
                engine.network,
                ProbabilityEstimator(
                    st, start, start_time, duration, database.num_days
                ),
                0.1,
            )
            old = reference(
                engine.network,
                LegacyProbabilityEstimator(
                    st, start, start_time, duration, database.num_days
                ),
                0.1,
            )
            self.assert_same_search(new, old)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_multi_seed_fallback_equivalence(self, engine, topology, seed):
        """m-query TBS with several live seeds: the per-segment fallback
        consultation order must reproduce the scalar result exactly."""
        rng = random.Random(seed + 31)
        segment_ids = sorted(engine.network.segment_ids())
        locations = tuple(
            engine.network.segment(s).midpoint
            for s in rng.sample(segment_ids, 3)
        )
        query = MQuery(locations, float(day_time(11)), 900.0, 0.1)
        live = engine.m_query(query, algorithm="mqmb_tbs")
        with legacy_probability_path():
            legacy = engine.m_query(query, algorithm="mqmb_tbs")
        assert live.segments == legacy.segments
        assert live.probabilities == legacy.probabilities
        assert live.cost.probability_checks == legacy.cost.probability_checks
        assert live.cost.segments_expanded == legacy.cost.segments_expanded
        assert live.cost.io.page_reads == legacy.cost.io.page_reads


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestEndToEndAccounting:
    """The same query, columnar vs scalar path, on one engine: identical
    results *and* identical charged I/O."""

    CASES = (
        ("s", "sqmb_tbs"),
        ("s", "es"),
        ("m", "mqmb_tbs"),
        ("m", "es_each"),
        ("r", "sqmb_tbs"),
        ("r", "es"),
    )

    @pytest.mark.parametrize("kind,algorithm", CASES)
    def test_page_reads_identical(self, engine, kind, algorithm):
        T = float(day_time(11))
        if kind == "m":
            query = MQuery(
                (Point(0.0, 0.0), Point(2000.0, 1500.0)), T, 600.0, 0.2
            )
            run = lambda: engine.m_query(query, algorithm=algorithm)
        else:
            query = SQuery(Point(0.0, 0.0), T, 600.0, 0.2)
            method = engine.s_query if kind == "s" else engine.r_query
            run = lambda: method(query, algorithm=algorithm)
        live = run()
        with legacy_probability_path():
            legacy = run()
        assert live.segments == legacy.segments
        assert live.probabilities == legacy.probabilities
        assert live.cost.probability_checks == legacy.cost.probability_checks
        assert live.cost.segments_expanded == legacy.cost.segments_expanded
        assert live.cost.io.page_reads == legacy.cost.io.page_reads
        assert live.cost.io.pool_hits == legacy.cost.io.pool_hits
        assert live.cost.io.pool_misses == legacy.cost.io.pool_misses


class TestWaveCounters:
    """The probability-path counters surfaced through the cost plumbing."""

    def test_cost_fields_populated(self, engine):
        from repro.api import ReachabilityClient, QueryOptions, Request

        client = ReachabilityClient(engine)
        query = SQuery(Point(0.0, 0.0), float(day_time(11)), 600.0, 0.2)
        response = client.send(
            Request(query, QueryOptions(algorithm="sqmb_tbs"))
        )
        cost = response.cost
        assert cost.probability_checks > 0
        assert cost.probability_waves > 0
        assert cost.max_wave_size >= 1
        # Empty-start short circuits aside, every check runs one path.
        assert (
            cost.kernel_probability_evals + cost.scalar_probability_evals
            <= cost.probability_checks
        )
        assert (
            cost.kernel_probability_evals + cost.scalar_probability_evals > 0
        )

    def test_batch_report_aggregates_probability_counters(self, engine):
        from repro.core.service import QueryService

        service = QueryService(engine, delta_t_s=300)
        queries = [
            SQuery(Point(0.0, 0.0), float(day_time(11)), 600.0, 0.2),
            SQuery(Point(2000.0, 1500.0), float(day_time(11)), 600.0, 0.2),
        ]
        report = service.run_batch(queries, algorithm="sqmb_tbs")
        assert report.probability_checks == sum(
            r.cost.probability_checks for r in report.results
        )
        assert report.probability_checks > 0
        rows = dict(report.as_rows())
        assert "Probability checks" in rows
        assert "waves" in rows["Probability checks"]

    def test_explain_renders_probability_path(self, engine):
        from repro.core.explain import explain_s_query

        query = SQuery(Point(0.0, 0.0), float(day_time(11)), 600.0, 0.2)
        explanation = explain_s_query(engine, query)
        assert explanation.prob_waves
        text = explanation.to_text()
        assert "probability path:" in text
        assert "waves" in text


class TestAppendedChains:
    """Multi-record chains (incremental appends) through the kernel."""

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_chained_records_equivalent(self):
        from repro.trajectory.model import MatchedTrajectory, SegmentVisit
        from repro.datasets.shenzhen_like import TEST_CONFIG, default_dataset

        dataset = default_dataset(TEST_CONFIG)
        engine = ReachabilityEngine(dataset.network, dataset.database)
        engine.st_index(300)
        T = day_time(11)
        segments = sorted(dataset.network.segment_ids())[:6]
        engine.append_trajectories(
            [
                MatchedTrajectory(
                    999000 + i, 0, date,
                    [SegmentVisit(s, T + 30 * i, 5.0) for s in segments],
                )
                for i, date in enumerate([0, 1, 9])
            ]
        )
        query = SQuery(Point(0.0, 0.0), float(T), 600.0, 0.2)
        live = engine.s_query(query)
        with legacy_probability_path():
            legacy = engine.s_query(query)
        assert live.segments == legacy.segments
        assert live.probabilities == legacy.probabilities
        assert live.cost.io.page_reads == legacy.cost.io.page_reads


class TestTraceBackEmptyEstimators:
    """Regression: trace_back_search with no estimators must not crash."""

    def test_empty_estimators_returns_empty_result(self, tiny_network):
        from repro.core.query import BoundingRegion

        segment_ids = sorted(tiny_network.segment_ids())
        region = BoundingRegion(
            cover=set(segment_ids[:10]), boundary=set(segment_ids[:4])
        )
        result = trace_back_search(
            tiny_network, {}, 0.5, region, BoundingRegion()
        )
        assert result.region == set()
        assert result.passed == set()
        assert result.failed == set()
        assert result.examined == 0


class TestTimeEntriesViews:
    """The single-record hot path serves cached read-only views."""

    def test_view_skips_copy_and_copy_stays_fresh(self, engine):
        st = engine.st_index(300)
        (segment_id, slot) = next(iter(st._directory))
        view_a = st.time_entries(segment_id, slot, copy=False)
        view_b = st.time_entries(segment_id, slot, copy=False)
        assert view_a is view_b  # the memoized record itself
        fresh = st.time_entries(segment_id, slot)
        assert fresh == view_a
        assert fresh is not view_a
        date = next(iter(fresh))
        assert fresh[date] is not view_a[date]

    def test_window_keys_match_trajectories_in_window(self, engine):
        st = engine.st_index(300)
        T = float(day_time(11))
        for segment_id in list(st.network.segment_ids())[:25]:
            for lo, hi in ((T, T + 480.0), (T + 100.0, T + 250.0),
                           (SECONDS_PER_DAY - 200.0, SECONDS_PER_DAY + 400.0)):
                keys = st.window_keys(segment_id, lo, hi)
                pairs = {
                    (int(k) >> 32, int(k) & 0xFFFFFFFF)
                    for k in np.asarray(keys).tolist()
                }
                reference = {
                    (date, tid)
                    for date, ids in st.trajectories_in_window(
                        segment_id, lo, hi
                    ).items()
                    for tid in ids
                }
                assert pairs == reference
