"""Deeper checks on the trips-mode generator's routing substrate."""

import numpy as np
import pytest

from repro.network.generator import grid_city
from repro.network.paths import network_distance, shortest_path_segments
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator


@pytest.fixture(scope="module")
def generator():
    network = grid_city(rows=4, cols=4, spacing=600.0, primary_every=2, seed=3)
    config = FleetConfig(
        num_taxis=2, num_days=1,
        day_start_s=9 * 3600.0, day_end_s=10 * 3600.0,
    )
    return TaxiFleetGenerator(network, config=config)


class TestPredecessorMatrix:
    def test_routes_match_dijkstra(self, generator):
        """The scipy all-pairs routes equal our own Dijkstra's."""
        network = generator.network
        ids = generator._segment_ids

        def time_cost(sid):
            return network.segment(sid).length / generator._free_flow[sid]

        for src_i, dst_i in [(0, 30), (5, 40), (12, 3)]:
            route = generator._route(src_i, dst_i)
            assert route is not None
            assert route[0] == ids[src_i] and route[-1] == ids[dst_i]
            for a, b in zip(route, route[1:]):
                assert b in network.successors(a)
            own = shortest_path_segments(
                network, ids[src_i], ids[dst_i], cost=time_cost
            )
            route_cost = sum(time_cost(s) for s in route[1:])
            own_cost = sum(time_cost(s) for s in own[1:])
            assert route_cost == pytest.approx(own_cost, rel=1e-9)

    def test_distance_matrix_consistent(self, generator):
        network = generator.network
        ids = generator._segment_ids

        def time_cost(sid):
            return network.segment(sid).length / generator._free_flow[sid]

        for src_i, dst_i in [(0, 30), (7, 19)]:
            scipy_d = float(generator._trip_dist[src_i, dst_i])
            ours = network_distance(
                network, ids[src_i], ids[dst_i], cost=time_cost
            )
            assert scipy_d == pytest.approx(ours, rel=1e-9)

    def test_route_to_self(self, generator):
        assert generator._route(4, 4) == [generator._segment_ids[4]]


class TestEndpointSampling:
    def test_cdf_monotone_complete(self, generator):
        cdf = generator._endpoint_cdf
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    def test_center_bias_favours_downtown(self, generator):
        import random

        rng = random.Random(5)
        network = generator.network
        center = network.bounds().center
        ids = generator._segment_ids
        samples = [
            network.segment(ids[generator._sample_endpoint(rng)]).midpoint
            for _ in range(800)
        ]
        mean_dist = float(
            np.mean([p.distance_to(center) for p in samples])
        )
        uniform_mean = float(
            np.mean([
                network.segment(s).midpoint.distance_to(center)
                for s in ids
            ])
        )
        assert mean_dist < uniform_mean  # downtown pull


class TestTripStructure:
    def test_idle_gaps_exist(self, generator):
        traj = generator._one_day(0, 0)
        gaps = []
        for a, b in zip(traj.visits, traj.visits[1:]):
            duration = generator._length[a.segment_id] / a.speed_mps
            slack = (b.time_s - a.time_s) - duration
            gaps.append(slack)
        # At least one inter-trip idle gap longer than a minute.
        assert any(g > 60.0 for g in gaps)

    def test_visits_continuous_within_trip(self, generator):
        traj = generator._one_day(1, 0)
        for a, b in zip(traj.visits, traj.visits[1:]):
            duration = generator._length[a.segment_id] / a.speed_mps
            slack = (b.time_s - a.time_s) - duration
            if abs(slack) < 1e-6:  # continuous driving step
                assert b.segment_id in generator._successors[a.segment_id]
