"""Tests for the road-network graph model."""

import pytest

from repro.network.model import RoadLevel, RoadNetwork, RoadSegment
from repro.spatial.geometry import Point


def simple_pair() -> RoadNetwork:
    """Two nodes joined by a two-way road (segments 0 and 1)."""
    net = RoadNetwork()
    net.add_node(0, Point(0, 0))
    net.add_node(1, Point(100, 0))
    net.add_segment(RoadSegment(0, 0, 1, (Point(0, 0), Point(100, 0)), twin_id=1))
    net.add_segment(RoadSegment(1, 1, 0, (Point(100, 0), Point(0, 0)), twin_id=0))
    return net


class TestSegment:
    def test_needs_two_shape_points(self):
        with pytest.raises(ValueError):
            RoadSegment(0, 0, 1, (Point(0, 0),))

    def test_length_and_midpoint(self):
        seg = RoadSegment(0, 0, 1, (Point(0, 0), Point(30, 40)))
        assert seg.length == pytest.approx(50.0)
        assert seg.midpoint == Point(15, 20)

    def test_bbox(self):
        seg = RoadSegment(0, 0, 1, (Point(0, 10), Point(5, -5)))
        box = seg.bbox
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -5, 5, 10)

    def test_one_way_flag(self):
        assert RoadSegment(0, 0, 1, (Point(0, 0), Point(1, 0))).one_way
        assert not RoadSegment(0, 0, 1, (Point(0, 0), Point(1, 0)), twin_id=9).one_way

    def test_canonical_id(self):
        assert RoadSegment(5, 0, 1, (Point(0, 0), Point(1, 0))).canonical_id() == 5
        assert RoadSegment(5, 0, 1, (Point(0, 0), Point(1, 0)), twin_id=3).canonical_id() == 3

    def test_distance_to_point(self):
        seg = RoadSegment(0, 0, 1, (Point(0, 0), Point(10, 0)))
        assert seg.distance_to_point(Point(5, 3)) == pytest.approx(3.0)


class TestNetworkConstruction:
    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_node(0, Point(1, 1))

    def test_duplicate_segment_rejected(self):
        net = simple_pair()
        with pytest.raises(ValueError):
            net.add_segment(
                RoadSegment(0, 0, 1, (Point(0, 0), Point(100, 0)))
            )

    def test_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(0, 0, 99, (Point(0, 0), Point(1, 0))))

    def test_next_ids(self):
        net = simple_pair()
        assert net.next_node_id() == 2
        assert net.next_segment_id() == 2

    def test_counts_and_bounds(self):
        net = simple_pair()
        assert net.num_nodes == 2
        assert net.num_segments == 2
        bounds = net.bounds()
        assert bounds.width == 100


class TestTopology:
    def test_two_way_pair_has_no_uturn(self):
        net = simple_pair()
        # Segment 0 ends at node 1; its only out-segment there is its twin.
        assert net.successors(0) == []
        assert net.predecessors(0) == []

    def test_neighbors_include_twin(self):
        net = simple_pair()
        # neighbors() serves a memoized read-only tuple.
        assert net.neighbors(0) == (1,)

    def test_chain_successors(self, tiny_network):
        for sid in tiny_network.segment_ids():
            for succ in tiny_network.successors(sid):
                seg = tiny_network.segment(sid)
                nxt = tiny_network.segment(succ)
                assert nxt.start_node == seg.end_node
                assert succ != seg.twin_id

    def test_successor_predecessor_duality(self, tiny_network):
        for sid in tiny_network.segment_ids():
            for succ in tiny_network.successors(sid):
                assert sid in tiny_network.predecessors(succ)

    def test_neighbors_symmetric(self, tiny_network):
        for sid in tiny_network.segment_ids():
            for nb in tiny_network.neighbors(sid):
                assert sid in tiny_network.neighbors(nb)

    def test_invariants_pass(self, tiny_network):
        tiny_network.check_invariants()


class TestMetrics:
    def test_total_length_dedups_twins(self):
        net = simple_pair()
        assert net.total_length() == pytest.approx(100.0)
        assert net.total_length(deduplicate_twins=False) == pytest.approx(200.0)

    def test_nearest_segment_linear(self, tiny_network):
        probe = Point(10, 10)
        nearest = tiny_network.nearest_segment_linear(probe)
        best = min(
            tiny_network.segments(),
            key=lambda s: s.distance_to_point(probe),
        )
        assert tiny_network.segment(nearest).distance_to_point(probe) == pytest.approx(
            best.distance_to_point(probe)
        )

    def test_nearest_segment_empty_network(self):
        with pytest.raises(ValueError):
            RoadNetwork().nearest_segment_linear(Point(0, 0))

    def test_euclidean_distance(self, tiny_network):
        sids = sorted(tiny_network.segment_ids())[:2]
        d = tiny_network.euclidean_distance(sids[0], sids[1])
        assert d >= 0
        assert tiny_network.euclidean_distance(sids[0], sids[0]) == 0.0
