"""Tests for Eq. 3.1 probability estimation on crafted trajectories."""

import pytest

from repro.core.probability import ProbabilityEstimator
from repro.core.st_index import STIndex
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))
NUM_DAYS = 5


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


@pytest.fixture(scope="module")
def route(network):
    """A 6-segment route following successors from segment 0."""
    path = [0]
    while len(path) < 6:
        path.append(network.successors(path[-1])[0])
    return path


@pytest.fixture(scope="module")
def index(network, route):
    """Crafted history:

    * all 5 days: a trajectory passes route[0..3] starting at T+10;
    * days 0-1 only: a second trajectory covers route[0..5] from T+20;
    * day 0: a trajectory on route[4] at T+50 that never touched route[0]
      (must not count toward reachability from route[0]).
    """
    db = TrajectoryDatabase(num_taxis=10, num_days=NUM_DAYS)
    for day in range(NUM_DAYS):
        db.add(MatchedTrajectory(
            trajectory_id=day * 10, taxi_id=0, date=day,
            visits=[
                SegmentVisit(route[i], T + 10 + 60 * i, 6.0) for i in range(4)
            ],
        ))
    for day in range(2):
        db.add(MatchedTrajectory(
            trajectory_id=day * 10 + 1, taxi_id=1, date=day,
            visits=[
                SegmentVisit(route[i], T + 20 + 60 * i, 6.0) for i in range(6)
            ],
        ))
    db.add(MatchedTrajectory(
        trajectory_id=2, taxi_id=2, date=0,
        visits=[SegmentVisit(route[4], T + 50, 6.0)],
    ))
    db.finalize()
    index = STIndex(network, 300)
    index.build(db)
    return index


class TestEquation31:
    def test_invalid_num_days(self, index, route):
        with pytest.raises(ValueError):
            ProbabilityEstimator(index, route[0], T, 600, 0)

    def test_start_days(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        assert est.start_days == NUM_DAYS

    def test_start_segment_probability_one(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        assert est.probability(route[0]) == pytest.approx(1.0)

    def test_every_day_route_is_certain(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        for segment in route[1:4]:
            assert est.probability(segment) == pytest.approx(1.0)

    def test_partial_route_fraction(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        # route[4], route[5] only reached on days 0-1 -> 2/5.
        assert est.probability(route[4]) == pytest.approx(2 / 5)
        assert est.probability(route[5]) == pytest.approx(2 / 5)

    def test_unrelated_trajectory_does_not_count(self, index, route, network):
        """The day-0 trajectory on route[4] never passed route[0]."""
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        # If intersection were ignored, day 0 would still only give 2/5 via
        # taxi 1; the lone taxi-2 visit must not raise it.
        assert est.probability(route[4]) == pytest.approx(2 / 5)

    def test_unvisited_segment_zero(self, index, route, network):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        untouched = [
            sid for sid in network.segment_ids() if sid not in route
        ][0]
        # Its twin may coincide with a route road; pick a clean one.
        clean = next(
            sid for sid in network.segment_ids()
            if sid not in route and network.segment(sid).twin_id not in route
        )
        assert est.probability(clean) == 0.0

    def test_duration_window_limits(self, index, route):
        # route[5] is entered at T+320; L=240 < 320 excludes it.
        est = ProbabilityEstimator(index, route[0], T, 240, NUM_DAYS)
        assert est.probability(route[5]) == 0.0

    def test_window_semantics_are_exact(self, index, route):
        """Time lists carry per-visit seconds, so a window starting
        mid-slot excludes earlier visits in the same slot instead of
        rounding out to the whole Δt slot."""
        est = ProbabilityEstimator(index, route[0], T + 5, 600, NUM_DAYS)
        assert est.start_days == NUM_DAYS  # departures at T+10/T+20
        # A start past the day's departures sees none of them, even
        # though T+61 lives in the same Δt slot as T+10.
        later = ProbabilityEstimator(index, route[0], T + 61, 600, NUM_DAYS)
        assert later.start_days == 0
        assert later.probability(route[1]) == 0.0

    def test_short_duration_truncates_departure_window(self, index, route):
        """With L < Δt the departure window is [T, T+L], not the whole
        first slot — results stay insensitive to the index granularity."""
        est = ProbabilityEstimator(index, route[0], T, 15, NUM_DAYS)
        assert est.start_days == NUM_DAYS  # T+10 departures qualify
        shorter = ProbabilityEstimator(index, route[0], T, 9, NUM_DAYS)
        assert shorter.start_days == 0

    def test_cache_counts_checks_once(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        est.probability(route[1])
        est.probability(route[1])
        assert est.checks == 1

    def test_twin_shares_probability(self, index, route, network):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        value = est.probability(route[1])
        twin = network.segment(route[1]).twin_id
        checks = est.checks
        assert est.probability(twin) == pytest.approx(value)
        assert est.checks == checks  # cached via twin

    def test_is_reachable_threshold(self, index, route):
        est = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        assert est.is_reachable(route[4], 0.4)
        assert not est.is_reachable(route[4], 0.41)
