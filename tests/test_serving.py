"""Sharded serving: partitioner, lifecycle, accounting, equivalence.

The equivalence tests (marked ``sharded``) spawn real worker processes
and prove the tentpole guarantees: identical results to the
single-process engine on a randomized fig-4.8-style workload, and
*exact* I/O aggregation — per-shard DiskStats windows sum to the batch
window, and each shard's window equals a fresh single-process engine
running that shard's exact sub-requests.
"""

from __future__ import annotations

import pytest

from repro.api.client import ReachabilityClient
from repro.api.envelope import QueryOptions, Request
from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery
from repro.core.service import QueryService
from repro.eval.workload import QueryWorkload
from repro.serving import ShardedEngine, partition_network
from repro.serving.partition import SegmentLocator, build_subnetwork
from repro.serving.protocol import pack_result, unpack_result
from repro.storage.disk import DiskStats


def fresh_engine(dataset) -> ReachabilityEngine:
    """A from-scratch engine (index built, no queries run yet).

    Sharded equivalence needs a *fresh* parent: the shard slices copy
    the parent disk's append tail, so a parent that already served
    queries (extra Con-Index appends) would not match a from-scratch
    oracle page-for-page.
    """
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(300)
    return engine


def mixed_requests(network, num_s: int = 12, num_m: int = 4, seed: int = 17):
    """A fig-4.8-style randomized workload plus reverse traffic."""
    workload = QueryWorkload(network, seed=seed)
    requests = [
        Request(query)
        for query in workload.mixed_batch(num_s, num_m, start_time_s=8 * 3600)
    ]
    requests += [
        Request(query, QueryOptions(direction="reverse"))
        for query in workload.s_queries(
            3, start_time_s=9 * 3600, salt="reverse"
        )
    ]
    return requests


# -- per-query I/O attribution (single-process) ---------------------------


class TestBatchAttribution:
    """Per-query windows sum exactly to the batch window, threaded too."""

    def test_serial_per_query_io_sums_to_batch(self, engine):
        requests = mixed_requests(engine.network, 8, 2)
        client = ReachabilityClient(QueryService(engine))
        report = client.run_batch(requests, max_workers=1)
        total = sum((r.cost.io for r in report.results), DiskStats())
        assert total == report.io

    def test_threaded_per_query_io_sums_to_batch(self, engine):
        requests = mixed_requests(engine.network, 8, 2)
        client = ReachabilityClient(QueryService(engine))
        report = client.run_batch(requests, max_workers=4)
        total = sum((r.cost.io for r in report.results), DiskStats())
        # Every page read/pool hit is charged to exactly one executing
        # thread, so the sum of per-query windows is the batch window —
        # the regression this PR fixes (the old global-diff attribution
        # double-counted overlapping queries).
        assert total == report.io

    def test_threaded_per_query_accesses_deterministic(self, engine):
        requests = mixed_requests(engine.network, 8, 2)
        client = ReachabilityClient(QueryService(engine))
        serial = client.run_batch(requests, max_workers=1)
        threaded = client.run_batch(requests, max_workers=4)
        for a, b in zip(serial.results, threaded.results):
            # hits-vs-misses can shift with scheduling (whoever touches a
            # page first pays the miss) but each query's page *accesses*
            # are a property of the query, not the schedule.
            assert (
                a.cost.io.pool_hits + a.cost.io.pool_misses
                == b.cost.io.pool_hits + b.cost.io.pool_misses
            )


# -- partitioner ----------------------------------------------------------


class TestPartitioner:
    def test_owned_sets_partition_the_network(self, test_dataset):
        plan = partition_network(test_dataset.network, 4, halo_m=2000.0)
        all_ids = {s.segment_id for s in test_dataset.network.segments()}
        owned = [spec.owned for spec in plan.shards]
        union = set().union(*owned)
        assert union == all_ids
        assert sum(len(o) for o in owned) == len(all_ids)  # disjoint
        assert plan.owner_of.keys() == all_ids

    def test_balanced_and_deterministic(self, test_dataset):
        plan_a = partition_network(test_dataset.network, 4, halo_m=2000.0)
        plan_b = partition_network(test_dataset.network, 4, halo_m=2000.0)
        sizes = [len(spec.owned) for spec in plan_a.shards]
        assert max(sizes) - min(sizes) <= max(2, len(plan_a.owner_of) // 10)
        for a, b in zip(plan_a.shards, plan_b.shards):
            assert a.owned == b.owned and a.halo == b.halo

    def test_single_shard_owns_everything(self, test_dataset):
        plan = partition_network(test_dataset.network, 1, halo_m=2000.0)
        assert plan.num_shards == 1
        assert not plan.shards[0].halo
        assert plan.shards[0].owned == {
            s.segment_id for s in test_dataset.network.segments()
        }

    def test_halo_within_radius(self, test_dataset):
        network = test_dataset.network
        halo_m = 1500.0
        plan = partition_network(network, 2, halo_m=halo_m)
        for spec in plan.shards:
            owned_mid = [
                network.segment(i).midpoint for i in spec.owned
            ]
            for halo_id in spec.halo:
                mid = network.segment(halo_id).midpoint
                assert any(
                    mid.distance_to(o) <= halo_m + 1e-6 for o in owned_mid
                )

    def test_locator_matches_scalar_start_segments(self, engine):
        # the dispatcher's vectorized owner resolution must agree with
        # the scalar R-tree walk the workers use
        requests = mixed_requests(engine.network, 20, 8)
        locations = []
        for request in requests:
            query = request.query
            locations.extend(
                getattr(query, "locations", None) or [query.location]
            )
        locator = SegmentLocator(engine.network)
        batch = locator.locate(locations, chunk=7)  # odd chunk: seams
        st_index = engine.st_index(300)
        for location, sid in zip(locations, batch):
            assert int(sid) == st_index.find_start_segment(location)

    def test_subnetwork_preserves_geometry(self, test_dataset):
        network = test_dataset.network
        plan = partition_network(network, 2, halo_m=2000.0)
        sub = build_subnetwork(network, plan.shards[0].members)
        assert sub.num_segments == len(plan.shards[0].members)
        for segment in sub.segments():
            original = network.segment(segment.segment_id)
            assert segment.shape == original.shape
            assert segment.length == original.length


# -- wire protocol --------------------------------------------------------


def test_result_roundtrip(engine):
    client = ReachabilityClient(QueryService(engine))
    response = client.send(mixed_requests(engine.network, 1, 1)[1])
    result = response.result
    restored = unpack_result(pack_result(result))
    assert restored.segments == result.segments
    assert restored.probabilities == result.probabilities
    assert restored.start_segments == result.start_segments
    assert (restored.max_region is None) == (result.max_region is None)
    if result.max_region is not None:
        assert restored.max_region.cover == result.max_region.cover
        assert restored.max_region.boundary == result.max_region.boundary
        assert restored.max_region.seed_of == result.max_region.seed_of
    assert restored.cost.io == result.cost.io


# -- lifecycle ------------------------------------------------------------


@pytest.mark.sharded
class TestLifecycle:
    def test_close_terminates_workers_and_is_idempotent(self, test_dataset):
        from repro.serving import ShardedEngineClosedError

        sharded = ShardedEngine(fresh_engine(test_dataset), shards=2)
        processes = [h.process for h in sharded._workers.values()]
        assert all(p.is_alive() for p in processes)
        sharded.close()
        assert all(not p.is_alive() for p in processes)
        sharded.close()  # idempotent
        with pytest.raises(ShardedEngineClosedError):
            sharded.run_batch(mixed_requests(test_dataset.network, 1, 0))
        # the typed error subclasses RuntimeError for old call sites
        with pytest.raises(RuntimeError):
            sharded.run_batch(mixed_requests(test_dataset.network, 1, 0))

    def test_context_manager(self, test_dataset):
        with ShardedEngine(fresh_engine(test_dataset), shards=2) as sharded:
            processes = [h.process for h in sharded._workers.values()]
            report = sharded.run_batch(
                mixed_requests(test_dataset.network, 2, 0)
            )
            assert len(report.results) == 5
        assert all(not p.is_alive() for p in processes)

    def test_client_close_shuts_shard_workers(self, test_dataset):
        with ReachabilityClient(
            fresh_engine(test_dataset), backend="sharded", shards=2
        ) as client:
            report = client.run_batch(mixed_requests(test_dataset.network, 2, 0))
            assert report.shard_reports
            processes = [
                h.process for h in client._sharded._workers.values()
            ]
            assert all(p.is_alive() for p in processes)
        assert all(not p.is_alive() for p in processes)
        assert client._sharded is None


# -- equivalence and exact accounting -------------------------------------


@pytest.mark.sharded
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_matches_single_process(test_dataset, shards):
    requests = mixed_requests(test_dataset.network)
    baseline = ReachabilityClient(fresh_engine(test_dataset)).run_batch(
        requests
    )
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)), shards=shards
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)

    decomposed = set(dispatch.decomposed)
    if shards >= 2:
        # the workload must actually exercise cross-shard m-queries
        assert decomposed
    assert len(report.results) == len(requests)
    for seq, (expected, actual) in enumerate(
        zip(baseline.results, report.results)
    ):
        assert actual.segments == expected.segments
        assert actual.start_segments == expected.start_segments
        if seq not in decomposed:
            # whole requests ran verbatim on one shard: probability
            # values and regions match too (decomposed parts may compute
            # different — equally valid — shell probabilities)
            assert actual.probabilities == expected.probabilities
            if expected.max_region is not None:
                assert actual.max_region.cover == expected.max_region.cover

    # exact aggregation: shard windows sum to the batch window (the
    # workload is fully in-contract, so there is no fallback I/O)
    assert not dispatch.fallback
    shard_sum = sum((s.io for s in report.shard_reports), DiskStats())
    assert shard_sum == report.io
    assert report.simulated_io_ms == pytest.approx(
        sum(s.simulated_io_ms for s in report.shard_reports)
    )


@pytest.mark.sharded
def test_shard_windows_match_single_process_oracle(test_dataset):
    """Each shard's DiskStats equals a fresh single-process engine
    running that shard's exact sub-request list — shard accounting is
    not merely internally consistent, it is *the same accounting* the
    paper's single-process model produces."""
    requests = mixed_requests(test_dataset.network)
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)), shards=2
    ) as sharded:
        report = sharded.run_batch(requests)
        dispatch = sharded.plan_dispatch(requests)
    for shard_report in report.shard_reports:
        sub_requests = [
            request
            for _, _, request in dispatch.per_shard[shard_report.shard_id]
        ]
        with ReachabilityClient(fresh_engine(test_dataset)) as oracle:
            oracle_report = oracle.run_batch(sub_requests, max_workers=1)
        assert oracle_report.io == shard_report.io


@pytest.mark.sharded
def test_out_of_contract_requests_fall_back(test_dataset):
    workload = QueryWorkload(test_dataset.network, seed=5)
    (query,) = workload.s_queries(1, start_time_s=10 * 3600)
    with ShardedEngine(
        QueryService(fresh_engine(test_dataset)),
        shards=2,
        max_duration_s=300.0,  # tiny contract: everything falls back
    ) as sharded:
        long_query = Request(
            type(query)(
                location=query.location,
                start_time_s=query.start_time_s,
                duration_s=1800.0,
                prob=query.prob,
            )
        )
        dispatch = sharded.plan_dispatch([long_query])
        assert dispatch.fallback and not dispatch.num_sub_requests
        report = sharded.run_batch([long_query])
    assert len(report.results) == 1
    assert not report.shard_reports
    baseline = ReachabilityClient(fresh_engine(test_dataset)).run_batch(
        [long_query]
    )
    assert report.results[0].segments == baseline.results[0].segments


# -- protocol error paths ---------------------------------------------------


class _ScriptedConn:
    """In-process stand-in for a worker's pipe end: replays scripted
    incoming frames and records everything the worker sends back."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.sent = []

    def recv(self):
        if not self.frames:
            raise EOFError
        return self.frames.pop(0)

    def send(self, frame):
        self.sent.append(frame)


class TestProtocolErrorPaths:
    """The RL009 contract, exercised dynamically: unknown kinds and
    executor failures answer with MSG_ERROR instead of killing the
    worker loop; a dead worker surfaces as RuntimeError, not a hang."""

    def test_unknown_message_kind_gets_structured_error(self):
        from repro.serving.protocol import (
            MSG_ERROR,
            MSG_SHUTDOWN,
            PROTOCOL_VERSION,
        )
        from repro.serving.worker import shard_worker_main

        conn = _ScriptedConn(
            [
                ("bogus", 7, {"version": PROTOCOL_VERSION}),
                (MSG_SHUTDOWN,),
            ]
        )
        shard_worker_main(conn, [])
        assert len(conn.sent) == 1
        kind, request_id, body = conn.sent[0]
        assert kind == MSG_ERROR
        assert request_id == 7  # echoes the offending command's id
        assert "unknown message kind" in body
        assert "bogus" in body

    def test_malformed_frame_survives_and_replies_error(self):
        # A garbage frame or a version-less command must not kill the
        # loop: the worker answers MSG_ERROR and keeps serving.
        from repro.serving.protocol import MSG_ERROR, MSG_RUN, MSG_SHUTDOWN
        from repro.serving.worker import shard_worker_main

        conn = _ScriptedConn(
            [
                "zz",  # not a tuple
                (MSG_RUN, 1, {"warm": False}),  # missing protocol version
                (MSG_SHUTDOWN,),
            ]
        )
        shard_worker_main(conn, [])
        assert [kind for kind, _, _ in conn.sent] == [MSG_ERROR, MSG_ERROR]
        # parse failures happen before the id is trusted: both carry -1
        assert [rid for _, rid, _ in conn.sent] == [-1, -1]
        assert "version" in conn.sent[1][2]

    def test_failing_run_replies_error_with_traceback(self):
        # A MSG_RUN for a shard the worker does not host fails inside
        # _serve_run; the reply must carry the traceback, and the loop
        # must stay alive for the next frame.
        from repro.serving.protocol import (
            MSG_ERROR,
            MSG_RUN,
            MSG_SHUTDOWN,
            PROTOCOL_VERSION,
        )
        from repro.serving.worker import shard_worker_main

        conn = _ScriptedConn(
            [
                (
                    MSG_RUN,
                    3,
                    {
                        "version": PROTOCOL_VERSION,
                        "warm": False,
                        "shards": {99: []},
                    },
                ),
                (MSG_SHUTDOWN,),
            ]
        )
        shard_worker_main(conn, [])
        assert len(conn.sent) == 1
        kind, request_id, body = conn.sent[0]
        assert kind == MSG_ERROR
        assert request_id == 3
        assert "Traceback" in body and "KeyError" in body

    def test_pipe_eof_exits_worker_loop_cleanly(self):
        from repro.serving.worker import shard_worker_main

        conn = _ScriptedConn([])  # recv raises EOFError immediately
        shard_worker_main(conn, [])  # must return, not raise
        assert conn.sent == []

    def test_worker_death_mid_session_recovers(self, test_dataset):
        # Pre-PR-9 this raised out of run_batch; the supervisor now
        # respawns every killed worker from its retained payloads and
        # the batch completes (deeper matrix: tests/test_serving_faults.py).
        sharded = ShardedEngine(fresh_engine(test_dataset), shards=2)
        try:
            for handle in sharded._workers.values():
                handle.process.kill()
            for handle in sharded._workers.values():
                handle.process.join(timeout=10)
            report = sharded.run_batch(
                mixed_requests(test_dataset.network, 2, 0)
            )
            assert len(report.results) == 5
            assert report.worker_restarts >= 2
        finally:
            sharded.close()

    def test_double_close_after_failure_is_safe(self, test_dataset):
        from repro.serving import ShardedEngineClosedError

        sharded = ShardedEngine(fresh_engine(test_dataset), shards=2)
        for handle in sharded._workers.values():
            handle.process.kill()
        for handle in sharded._workers.values():
            handle.process.join(timeout=10)
        sharded.close()  # pipes to dead workers: must swallow the errors
        sharded.close()  # and stay idempotent
        with pytest.raises(ShardedEngineClosedError):
            sharded.run_batch(mixed_requests(test_dataset.network, 1, 0))

    def test_del_never_raises_without_init(self):
        # __del__ on a half-constructed engine (e.g. __init__ raised
        # before _closed was assigned) must stay silent at GC time.
        broken = ShardedEngine.__new__(ShardedEngine)
        broken.__del__()  # no AttributeError, no output
