"""Unit and property tests for repro.spatial.geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import (
    BBox,
    Point,
    from_lonlat,
    haversine_m,
    interpolate_along,
    point_segment_distance,
    polyline_length,
    project_onto_segment,
    to_lonlat,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        assert Point(1.5, -2.5).distance_to(Point(1.5, -2.5)) == 0.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BBox(1, 0, 0, 1)

    def test_from_points(self):
        box = BBox.from_points([Point(1, 5), Point(-2, 3), Point(0, 7)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 3, 1, 7)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_around_negative_radius_raises(self):
        with pytest.raises(ValueError):
            BBox.around(Point(0, 0), -1.0)

    def test_around(self):
        box = BBox.around(Point(1, 2), 3)
        assert box == BBox(-2, -1, 4, 5)

    def test_measures(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.margin == 7
        assert box.center == Point(2, 1.5)

    def test_intersects_touching_edges(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 1, 2, 2))

    def test_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_contains_point_boundary(self):
        assert BBox(0, 0, 1, 1).contains_point(Point(1, 0))

    def test_contains_bbox(self):
        assert BBox(0, 0, 4, 4).contains_bbox(BBox(1, 1, 2, 2))
        assert not BBox(0, 0, 4, 4).contains_bbox(BBox(1, 1, 5, 2))

    def test_union(self):
        assert BBox(0, 0, 1, 1).union(BBox(2, 2, 3, 3)) == BBox(0, 0, 3, 3)

    def test_enlargement_zero_for_contained(self):
        assert BBox(0, 0, 4, 4).enlargement(BBox(1, 1, 2, 2)) == 0.0

    def test_distance_to_point_inside_is_zero(self):
        assert BBox(0, 0, 2, 2).distance_to_point(Point(1, 1)) == 0.0

    def test_distance_to_point_outside(self):
        assert BBox(0, 0, 1, 1).distance_to_point(Point(4, 5)) == pytest.approx(5.0)

    @given(st.lists(points, min_size=1, max_size=20))
    def test_from_points_contains_all(self, pts):
        box = BBox.from_points(pts)
        assert all(box.contains_point(p) for p in pts)

    @given(st.lists(points, min_size=2, max_size=8))
    def test_union_is_commutative_and_covering(self, pts):
        a = BBox.from_points(pts[:1])
        b = BBox.from_points(pts[1:])
        u = a.union(b)
        assert u == b.union(a)
        assert u.contains_bbox(a) and u.contains_bbox(b)


class TestSegmentGeometry:
    def test_point_on_segment_distance_zero(self):
        assert point_segment_distance(
            Point(1, 1), Point(0, 0), Point(2, 2)
        ) == pytest.approx(0.0)

    def test_perpendicular_distance(self):
        assert point_segment_distance(
            Point(1, 1), Point(0, 0), Point(2, 0)
        ) == pytest.approx(1.0)

    def test_beyond_endpoint_clamps(self):
        assert point_segment_distance(
            Point(5, 0), Point(0, 0), Point(2, 0)
        ) == pytest.approx(3.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(
            Point(3, 4), Point(0, 0), Point(0, 0)
        ) == pytest.approx(5.0)

    def test_projection_parameter(self):
        proj, t = project_onto_segment(Point(1, 5), Point(0, 0), Point(2, 0))
        assert proj == Point(1, 0)
        assert t == pytest.approx(0.5)

    @given(points, points, points)
    def test_distance_never_negative(self, p, a, b):
        assert point_segment_distance(p, a, b) >= 0.0

    @given(points, points, points)
    def test_distance_at_most_endpoint_distance(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= min(p.distance_to(a), p.distance_to(b)) + 1e-6


class TestPolyline:
    def test_length(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert polyline_length(pts) == pytest.approx(7.0)

    def test_length_single_point(self):
        assert polyline_length([Point(0, 0)]) == 0.0

    def test_interpolate_start_and_end(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(pts, 0) == Point(0, 0)
        assert interpolate_along(pts, 100) == Point(10, 0)

    def test_interpolate_midway_across_vertices(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert interpolate_along(pts, 5.0) == Point(3, 2)

    def test_interpolate_empty_raises(self):
        with pytest.raises(ValueError):
            interpolate_along([], 1.0)


class TestCoordinateConversion:
    def test_roundtrip(self):
        p = Point(1234.5, -678.9)
        lon, lat = to_lonlat(p)
        back = from_lonlat(lon, lat)
        assert back.x == pytest.approx(p.x, abs=0.5)
        assert back.y == pytest.approx(p.y, abs=0.5)

    def test_origin_maps_to_reference(self):
        lon, lat = to_lonlat(Point(0, 0))
        assert lat == pytest.approx(22.5311)
        assert lon == pytest.approx(114.0550)

    def test_local_distance_matches_haversine(self):
        a, b = Point(0, 0), Point(3000, 4000)
        lon_a, lat_a = to_lonlat(a)
        lon_b, lat_b = to_lonlat(b)
        assert haversine_m(lat_a, lon_a, lat_b, lon_b) == pytest.approx(
            5000.0, rel=0.01
        )

    def test_haversine_zero(self):
        assert haversine_m(22.5, 114.0, 22.5, 114.0) == 0.0

    def test_haversine_known_degree(self):
        # One degree of latitude is ~111.2 km.
        assert haversine_m(0, 0, 1, 0) == pytest.approx(111_195, rel=0.01)
