"""Tests for SQMB, TBS, MQMB and the baselines on the shared test dataset.

These exercise the algorithms through the engine against the session-scoped
synthetic dataset, checking both structural invariants (covers nest, bounds
bracket the result) and agreement between the paper's algorithm and the
exhaustive baseline.
"""

import pytest

from repro.core.mqmb import mqmb_bounding_region
from repro.core.query import MQuery, SQuery
from repro.core.sqmb import close_under_twins, region_boundary, sqmb_bounding_region
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


@pytest.fixture(scope="module")
def con(engine):
    return engine.con_index(300)


@pytest.fixture(scope="module")
def r0(engine):
    return engine.st_index(300).find_start_segment(CENTER)


class TestSQMB:
    def test_cover_contains_both_carriageways_of_start(self, engine, con, r0):
        region = sqmb_bounding_region(con, r0, T, 600, "far")
        assert r0 in region.cover
        twin = engine.network.segment(r0).twin_id
        if twin is not None:
            assert twin in region.cover

    def test_cover_grows_with_duration(self, con, r0):
        small = sqmb_bounding_region(con, r0, T, 300, "far")
        large = sqmb_bounding_region(con, r0, T, 1200, "far")
        assert small.cover <= large.cover
        assert len(large.cover) > len(small.cover)

    def test_near_within_far(self, con, r0):
        near = sqmb_bounding_region(con, r0, T, 900, "near")
        far = sqmb_bounding_region(con, r0, T, 900, "far")
        assert near.cover <= far.cover

    def test_boundary_subset_of_cover(self, con, r0):
        region = sqmb_bounding_region(con, r0, T, 900, "far")
        assert region.boundary <= region.cover

    def test_boundary_members_have_escape(self, engine, con, r0):
        region = sqmb_bounding_region(con, r0, T, 900, "far")
        for segment in region.boundary:
            succs = engine.network.successors(segment)
            assert not succs or any(s not in region.cover for s in succs)

    def test_seed_attribution(self, con, r0):
        region = sqmb_bounding_region(con, r0, T, 600, "far")
        assert all(seed == r0 for seed in region.seed_of.values())
        assert set(region.seed_of) == region.cover

    def test_sub_delta_duration_takes_one_hop(self, con, r0):
        tiny = sqmb_bounding_region(con, r0, T, 60, "far")
        one_hop = sqmb_bounding_region(con, r0, T, 300, "far")
        assert tiny.cover == one_hop.cover

    def test_twin_closure_helper(self, engine):
        network = engine.network
        seg = next(iter(network.segment_ids()))
        cover = {seg}
        close_under_twins(network, cover)
        twin = network.segment(seg).twin_id
        if twin is not None:
            assert twin in cover

    def test_region_boundary_of_everything_is_deadends(self, engine):
        network = engine.network
        cover = set(network.segment_ids())
        boundary = region_boundary(network, cover)
        dead_ends = {
            s for s in cover if not network.successors(s)
        }
        if dead_ends:
            assert boundary == dead_ends
        else:
            # No escapes at all: the fallback returns the whole cover so
            # trace-back still has seeds (ring topologies).
            assert boundary == cover


class TestMQMB:
    def test_empty_seeds_rejected(self, con):
        with pytest.raises(ValueError):
            mqmb_bounding_region(con, [], T, 600)

    def test_single_seed_matches_sqmb(self, con, r0):
        single = sqmb_bounding_region(con, r0, T, 900, "far")
        multi = mqmb_bounding_region(con, [r0], T, 900, "far")
        assert multi.cover == single.cover
        assert multi.boundary == single.boundary

    def test_union_covers_each_seed_region(self, engine, con, r0):
        st = engine.st_index(300)
        other = st.find_start_segment(Point(1500.0, 1000.0))
        merged = mqmb_bounding_region(con, [r0, other], T, 600, "far")
        for seed in (r0, other):
            assert seed in merged.cover

    def test_seed_attribution_is_nearest(self, engine, con, r0):
        st = engine.st_index(300)
        other = st.find_start_segment(Point(1500.0, 1000.0))
        if other == r0:
            pytest.skip("locations resolve to the same segment")
        merged = mqmb_bounding_region(con, [r0, other], T, 600, "far")
        network = engine.network
        for segment, seed in merged.seed_of.items():
            if segment in (r0, other):
                continue
            d_claimed = network.euclidean_distance(seed, segment)
            d_other = min(
                network.euclidean_distance(s, segment) for s in (r0, other)
            )
            assert d_claimed == pytest.approx(d_other)

    def test_duplicate_seeds_deduped(self, con, r0):
        merged = mqmb_bounding_region(con, [r0, r0, r0], T, 600, "far")
        single = mqmb_bounding_region(con, [r0], T, 600, "far")
        assert merged.cover == single.cover


class TestSQueryAgreement:
    @pytest.mark.parametrize("duration_s", [300, 600, 900])
    def test_sqmb_tbs_matches_es(self, engine, duration_s):
        """TBS finds everything ES finds; any over-claim is confined to the
        minimum bounding region, which Algorithm 2 trusts without
        verification (the thesis's Bmin assumption)."""
        query = SQuery(CENTER, T, duration_s, 0.2)
        ours = engine.s_query(query, algorithm="sqmb_tbs")
        baseline = engine.s_query(query, algorithm="es")
        if not (ours.segments | baseline.segments):
            pytest.skip("empty region on the small dataset")
        missed = baseline.segments - ours.segments
        assert not missed, f"TBS missed {len(missed)} ES segments"
        overclaimed = ours.segments - baseline.segments
        assert overclaimed <= ours.min_region.cover

    @pytest.mark.parametrize("prob", [0.2, 0.5, 0.8])
    def test_result_within_max_bound(self, engine, prob):
        query = SQuery(CENTER, T, 600, prob)
        result = engine.s_query(query)
        if result.max_region is not None:
            assert result.segments <= result.max_region.cover

    def test_region_shrinks_with_probability(self, engine):
        low = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        high = engine.s_query(SQuery(CENTER, T, 600, 0.9))
        assert len(high.segments) <= len(low.segments)

    def test_region_grows_with_duration(self, engine):
        short = engine.s_query(SQuery(CENTER, T, 300, 0.2))
        long = engine.s_query(SQuery(CENTER, T, 1500, 0.2))
        assert len(long.segments) >= len(short.segments)

    def test_passed_probabilities_meet_threshold(self, engine):
        query = SQuery(CENTER, T, 600, 0.4)
        result = engine.s_query(query, algorithm="es")
        for segment in result.segments:
            assert result.probabilities[segment] >= 0.4

    def test_es_pruned_matches_es_region(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        full = engine.s_query(query, algorithm="es")
        pruned = engine.s_query(query, algorithm="es_pruned")
        # The pruned baseline may miss regions beyond zero-support gaps but
        # must otherwise agree; on this dense dataset they should be equal.
        assert pruned.segments == full.segments

    def test_es_pruned_cheaper_than_es(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        full = engine.s_query(query, algorithm="es")
        pruned = engine.s_query(query, algorithm="es_pruned")
        assert (
            pruned.cost.probability_checks <= full.cost.probability_checks
        )


class TestMQueryAgreement:
    LOCATIONS = (CENTER, Point(1200.0, 800.0), Point(-1000.0, -600.0))

    def test_mqmb_matches_naive_union(self, engine):
        query = MQuery(self.LOCATIONS, T, 600, 0.2)
        ours = engine.m_query(query, algorithm="mqmb_tbs")
        naive = engine.m_query(query, algorithm="sqmb_tbs_each")
        union = ours.segments | naive.segments
        if not union:
            pytest.skip("empty region")
        jaccard = len(ours.segments & naive.segments) / len(union)
        assert jaccard >= 0.9

    def test_m_query_single_location_matches_s_query(self, engine):
        s_result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        m_result = engine.m_query(MQuery((CENTER,), T, 600, 0.2))
        assert m_result.segments == s_result.segments

    def test_m_query_superset_of_any_single(self, engine):
        m_result = engine.m_query(MQuery(self.LOCATIONS, T, 600, 0.2))
        s_result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        missing = s_result.segments - m_result.segments
        # The union must essentially contain the single-seed region (tiny
        # boundary discrepancies from seed attribution are tolerated).
        assert len(missing) <= max(2, len(s_result.segments) // 10)

    def test_es_each_is_most_expensive(self, engine):
        query = MQuery(self.LOCATIONS, T, 600, 0.2)
        mqmb = engine.m_query(query, algorithm="mqmb_tbs")
        es_each = engine.m_query(query, algorithm="es_each")
        assert mqmb.cost.probability_checks < es_each.cost.probability_checks
