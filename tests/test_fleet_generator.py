"""Tests for the taxi-fleet trajectory generator."""

import pytest

from repro.network.generator import grid_city
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator
from repro.trajectory.model import SECONDS_PER_DAY
from repro.trajectory.store import TrajectoryDatabase


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=2, seed=3)


SMALL = dict(num_taxis=3, num_days=2, day_start_s=8 * 3600.0, day_end_s=10 * 3600.0)


class TestFleetConfig:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            FleetConfig(num_taxis=0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            FleetConfig(day_start_s=100.0, day_end_s=50.0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            FleetConfig(mode="teleport")

    def test_bad_slow_prob(self):
        with pytest.raises(ValueError):
            FleetConfig(slow_prob=1.5)


class TestTripsMode:
    def test_one_trajectory_per_taxi_day(self, network):
        gen = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        trajectories = list(gen.generate_matched())
        assert len(trajectories) == 6
        ids = {t.trajectory_id for t in trajectories}
        assert len(ids) == 6

    def test_deterministic(self, network):
        a = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        b = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        ta = next(a.generate_matched())
        tb = next(b.generate_matched())
        assert ta.segments() == tb.segments()
        assert [v.time_s for v in ta.visits] == [v.time_s for v in tb.visits]

    def test_times_monotone_and_in_window(self, network):
        gen = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        for traj in gen.generate_matched():
            traj.check_monotone()
            assert all(
                SMALL["day_start_s"] <= v.time_s < SMALL["day_end_s"]
                for v in traj.visits
            )

    def test_routes_are_connected(self, network):
        gen = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        traj = next(gen.generate_matched())
        segments = traj.segments()
        times = [v.time_s for v in traj.visits]
        for i in range(len(segments) - 1):
            a, b = segments[i], segments[i + 1]
            gap = times[i + 1] - times[i]
            duration = network.segment(a).length / traj.visits[i].speed_mps
            if gap <= duration + 1e-6:
                # Continuous driving: consecutive segments must be adjacent.
                assert b in network.successors(a)

    def test_speeds_positive(self, network):
        gen = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        for traj in gen.generate_matched():
            assert all(v.speed_mps >= 0.5 for v in traj.visits)

    def test_generate_into_database(self, network):
        gen = TaxiFleetGenerator(network, config=FleetConfig(**SMALL))
        db = TrajectoryDatabase(3, 2)
        gen.generate_into(db)
        assert len(db) == 6
        assert db.stats().num_visits > 0

    def test_generate_into_matches_objects(self, network):
        cfg = FleetConfig(**SMALL)
        db = TrajectoryDatabase(3, 2)
        TaxiFleetGenerator(network, config=cfg).generate_into(db)
        objects = list(TaxiFleetGenerator(network, config=cfg).generate_matched())
        for traj in objects:
            stored = db.get(traj.trajectory_id)
            assert stored.segments() == traj.segments()


class TestWalkMode:
    def test_walk_generates(self, network):
        cfg = FleetConfig(mode="walk", **SMALL)
        gen = TaxiFleetGenerator(network, config=cfg)
        traj = next(gen.generate_matched())
        assert len(traj.visits) > 10
        traj.check_monotone()

    def test_walk_steps_adjacent(self, network):
        cfg = FleetConfig(mode="walk", **SMALL)
        gen = TaxiFleetGenerator(network, config=cfg)
        traj = next(gen.generate_matched())
        segments = traj.segments()
        for a, b in zip(segments, segments[1:]):
            assert b in network.successors(a) or b in network.segment_ids()


class TestGPSSampling:
    def test_raw_points_follow_interval(self, network):
        cfg = FleetConfig(gps_interval_s=30.0, **SMALL)
        gen = TaxiFleetGenerator(network, config=cfg)
        raw, matched = next(gen.generate_raw())
        assert raw.trajectory_id == matched.trajectory_id
        assert len(raw.points) > 10
        raw.check_monotone()
        gaps = [
            b.time_s - a.time_s for a, b in zip(raw.points, raw.points[1:])
        ]
        # Sampling period is 30 s; idle gaps may stretch individual gaps.
        assert min(gaps) >= 29.0

    def test_gps_points_near_network(self, network):
        cfg = FleetConfig(**SMALL)
        gen = TaxiFleetGenerator(network, config=cfg)
        raw, _ = next(gen.generate_raw())
        bounds = network.bounds()
        for point in raw.points[:50]:
            # 12 m noise sigma: everything should be within ~100 m of roads.
            assert bounds.min_x - 100 <= point.position.x <= bounds.max_x + 100
            assert bounds.min_y - 100 <= point.position.y <= bounds.max_y + 100


class TestSlowTraversals:
    def test_slow_tail_widens_speed_range(self, network):
        fast_only = FleetConfig(slow_prob=0.0, **SMALL)
        with_slow = FleetConfig(slow_prob=0.3, **SMALL)
        speeds_fast = [
            v.speed_mps
            for t in TaxiFleetGenerator(network, config=fast_only).generate_matched()
            for v in t.visits
        ]
        speeds_slow = [
            v.speed_mps
            for t in TaxiFleetGenerator(network, config=with_slow).generate_matched()
            for v in t.visits
        ]
        assert min(speeds_slow) < min(speeds_fast)
