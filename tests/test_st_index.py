"""Tests for the Spatio-Temporal Index (§3.2.1)."""

import pytest

from repro.core.st_index import STIndex, decode_time_list, encode_time_list
from repro.network.generator import grid_city
from repro.storage.serialization import SerializationError
from repro.trajectory.model import (
    MatchedTrajectory,
    SECONDS_PER_DAY,
    SegmentVisit,
    day_time,
)
from repro.trajectory.store import TrajectoryDatabase
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


def db_with(network, visits_by_traj, num_taxis=8, num_days=5):
    db = TrajectoryDatabase(num_taxis, num_days)
    for (tid, taxi, date), visits in visits_by_traj.items():
        db.add(
            MatchedTrajectory(
                trajectory_id=tid, taxi_id=taxi, date=date,
                visits=[SegmentVisit(*v) for v in visits],
            )
        )
    db.finalize()
    return db


class TestTimeListCodec:
    def test_roundtrip(self):
        per_date = {0: [(5, 120), (2, 40), (9, 299)], 3: [(1, 0)], 29: []}
        decoded = decode_time_list(encode_time_list(per_date))
        assert decoded == {
            0: [(2, 40), (5, 120), (9, 299)],
            3: [(1, 0)],
            29: [],
        }

    def test_empty(self):
        assert decode_time_list(encode_time_list({})) == {}

    def test_misaligned_rejected(self):
        with pytest.raises(SerializationError):
            decode_time_list(b"\x01\x00\x00")

    def test_truncated_rejected(self):
        payload = encode_time_list({1: [(2, 10), (3, 20)]})
        with pytest.raises(SerializationError):
            decode_time_list(payload[:-4])


class TestSlots:
    def test_bad_delta_t(self, network):
        with pytest.raises(ValueError):
            STIndex(network, 0)
        with pytest.raises(ValueError):
            STIndex(network, SECONDS_PER_DAY + 1)

    def test_slot_of(self, network):
        index = STIndex(network, 300)
        assert index.slot_of(0) == 0
        assert index.slot_of(299) == 0
        assert index.slot_of(300) == 1
        assert index.slot_of(day_time(11)) == 132
        assert index.slot_of(SECONDS_PER_DAY + 100) == index.num_slots - 1

    def test_num_slots(self, network):
        assert STIndex(network, 300).num_slots == 288
        assert STIndex(network, 60).num_slots == 1440
        assert STIndex(network, 1200).num_slots == 72

    def test_slots_in_window(self, network):
        index = STIndex(network, 300)
        assert index.slots_in_window(0, 300) == [0]
        assert index.slots_in_window(0, 301) == [0, 1]
        assert index.slots_in_window(150, 750) == [0, 1, 2]
        assert index.slots_in_window(100, 100) == []
        # window extending past midnight wraps into the day's first slots
        late = index.slots_in_window(SECONDS_PER_DAY - 100, SECONDS_PER_DAY + 500)
        assert late == [287, 0, 1]
        # a full-day (or longer) window covers every slot exactly once
        full = index.slots_in_window(3600, 3600 + SECONDS_PER_DAY)
        assert full == list(range(index.num_slots))


class TestBuildAndRead:
    def test_build_and_read_time_lists(self, network):
        db = db_with(network, {
            (0, 0, 0): [(5, 100.0, 3.0), (6, 400.0, 3.0)],
            (8, 0, 1): [(5, 120.0, 3.0)],
            (1, 1, 0): [(5, 200.0, 3.0)],
        })
        index = STIndex(network, 300)
        index.build(db)
        assert index.time_list(5, 0) == {0: {0, 1}, 1: {8}}
        assert index.time_list(6, 1) == {0: {0}}
        assert index.time_list(6, 0) == {}
        assert index.has_entry(5, 0)
        assert not index.has_entry(99, 0)

    def test_double_build_rejected(self, network):
        db = db_with(network, {(0, 0, 0): [(5, 100.0, 3.0)]})
        index = STIndex(network, 300)
        index.build(db)
        with pytest.raises(RuntimeError):
            index.build(db)

    def test_duplicate_visits_deduplicated(self, network):
        db = db_with(network, {
            (0, 0, 0): [(5, 100.0, 3.0), (5, 150.0, 3.0)],
        })
        index = STIndex(network, 300)
        index.build(db)
        assert index.time_list(5, 0) == {0: {0}}

    def test_trajectories_in_window_merges_slots(self, network):
        db = db_with(network, {
            (0, 0, 0): [(5, 100.0, 3.0)],
            (1, 1, 0): [(5, 400.0, 3.0)],
            (2, 2, 1): [(5, 700.0, 3.0)],
        })
        index = STIndex(network, 300)
        index.build(db)
        window = index.trajectories_in_window(5, 0, 600)
        assert window == {0: {0, 1}}
        wide = index.trajectories_in_window(5, 0, 900)
        assert wide == {0: {0, 1}, 1: {2}}

    def test_partial_slot_window_is_exact(self, network):
        db = db_with(network, {
            (0, 0, 0): [(5, 100.0, 3.0)],
            (1, 1, 0): [(5, 250.0, 3.0)],
        })
        index = STIndex(network, 300)
        index.build(db)
        # Windows that cut a slot filter by the stored visit seconds
        # instead of rounding out to the whole slot.
        assert index.trajectories_in_window(5, 0, 200) == {0: {0}}
        assert index.trajectories_in_window(5, 150, 300) == {0: {1}}
        assert index.trajectories_in_window(5, 0, 300) == {0: {0, 1}}

    def test_reads_charge_io(self, network):
        db = db_with(network, {(0, 0, 0): [(5, 100.0, 3.0)]})
        index = STIndex(network, 300)
        index.build(db)
        index.pool.invalidate()
        before = index.disk.snapshot()
        index.time_list(5, 0)
        assert (index.disk.snapshot() - before).page_reads >= 1
        # Absence proof costs nothing.
        before = index.disk.snapshot()
        index.time_list(5, 99)
        assert (index.disk.snapshot() - before).page_reads == 0

    def test_stats_populated(self, network):
        db = db_with(network, {(0, 0, 0): [(5, 100.0, 3.0), (6, 400.0, 3.0)]})
        index = STIndex(network, 300)
        index.build(db)
        assert index.stats.num_entries == 2
        assert index.stats.num_slots == 288
        assert index.stats.disk_pages >= 1


class TestStartSegmentLookup:
    def test_find_start_segment_matches_linear(self, network):
        index = STIndex(network, 300)
        for probe in (Point(0, 0), Point(500, 300), Point(-700, 900)):
            found = index.find_start_segment(probe)
            best = network.nearest_segment_linear(probe)
            assert network.segment(found).distance_to_point(probe) == pytest.approx(
                network.segment(best).distance_to_point(probe)
            )

    def test_rtree_size(self, network):
        index = STIndex(network, 300)
        assert len(index.rtree) == network.num_segments
