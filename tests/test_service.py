"""Tests for the batch-capable :class:`QueryService`."""

import pytest

from repro.core.query import MQuery, SQuery
from repro.core.service import QueryService, as_service
from repro.eval import config
from repro.eval.workload import QueryWorkload, fig48_m_query_batch
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


@pytest.fixture(scope="module")
def service(engine):
    return QueryService(engine)


@pytest.fixture(scope="module")
def fig48_queries(test_dataset):
    """The Fig 4.8(a)-style m-query workload on the test dataset."""
    locations = tuple(
        loc for loc in config.M_QUERY_LOCATIONS[:3]
    )
    return fig48_m_query_batch(
        locations, durations_s=(600, 1200, 1800), start_time_s=T, prob=0.2
    )


class TestSingleQueries:
    def test_s_query_matches_engine(self, engine, service):
        query = SQuery(CENTER, T, 600, 0.2)
        via_service = service.s_query(query)
        via_engine = engine.s_query(query)
        assert via_service.segments == via_engine.segments
        assert via_service.start_segments == via_engine.start_segments

    def test_query_dispatches_on_type(self, service):
        m = MQuery((CENTER,), T, 600, 0.2)
        s = SQuery(CENTER, T, 600, 0.2)
        assert service.plan(m).kind == "m"
        assert service.plan(s).kind == "s"
        assert service.query(m).segments == service.query(s).segments

    def test_r_query_kind(self, service):
        plan = service.plan(SQuery(CENTER, T, 600, 0.2), kind="r")
        assert plan.kind == "r"
        assert plan.bounding_strategy == "reverse"

    def test_as_service_idempotent(self, engine, service):
        assert as_service(service) is service
        assert as_service(engine).engine is engine


class TestBatches:
    def test_empty_batch(self, service):
        report = service.run_batch([])
        assert report.results == []
        assert report.page_reads == 0

    def test_batch_equivalent_and_fewer_reads_than_sequential(
        self, engine, service, fig48_queries
    ):
        """The acceptance workload: same result sets, fewer page reads."""
        sequential = [engine.m_query(q) for q in fig48_queries]
        sequential_reads = sum(r.cost.io.page_reads for r in sequential)
        report = service.run_batch(fig48_queries)
        assert [r.segments for r in report.results] == [
            r.segments for r in sequential
        ]
        assert [r.probabilities for r in report.results] == [
            r.probabilities for r in sequential
        ]
        assert 0 < report.io.page_reads < sequential_reads
        # Warm pools inside the batch mean hits were served cache-side.
        assert report.io.pool_hits > 0

    def test_batch_dedups_shared_bounding_regions(self, engine):
        """Same seeds + slot + duration at different thresholds: the
        bounding regions are computed once and reused."""
        fresh = QueryService(engine)
        base = MQuery(tuple(config.M_QUERY_LOCATIONS[:3]), T, 1200, 0.2)
        batch = [
            MQuery(base.locations, T, 1200, prob)
            for prob in (0.2, 0.4, 0.6)
        ]
        report = fresh.run_batch(batch)
        # One far + one near region for the shared shape; the other two
        # queries reuse both.
        assert report.regions_computed == 2
        assert report.regions_reused == 4
        sequential = [engine.m_query(q) for q in batch]
        assert [r.segments for r in report.results] == [
            r.segments for r in sequential
        ]

    def test_regions_shared_across_batches(self, engine):
        """The region cache outlives one batch: a repeat batch computes
        nothing and serves every bound from the service-lifetime LRU."""
        fresh = QueryService(engine)
        batch = [SQuery(CENTER, T, 600, p) for p in (0.2, 0.5)]
        first = fresh.run_batch(batch)
        assert first.regions_computed == 2  # far + near, shared shape
        assert first.regions_reused == 2
        second = fresh.run_batch(batch)
        assert second.regions_computed == 0
        assert second.regions_reused == 4
        assert [r.segments for r in second.results] == [
            r.segments for r in first.results
        ]

    def test_batch_reuses_plans(self, service):
        batch = [SQuery(CENTER, T, 600, p) for p in (0.2, 0.4, 0.8)]
        report = service.run_batch(batch)
        assert report.plans_reused == 2
        assert report.plans[0] is report.plans[1] is report.plans[2]

    def test_mixed_kind_batch(self, service):
        batch = [
            SQuery(CENTER, T, 600, 0.2),
            MQuery((CENTER, Point(1000.0, 1000.0)), T, 600, 0.2),
        ]
        report = service.run_batch(batch)
        assert report.plans[0].kind == "s"
        assert report.plans[1].kind == "m"
        assert len(report.results) == 2

    def test_worker_pool_matches_sequential_batch(self, service, fig48_queries):
        solo = service.run_batch(fig48_queries)
        threaded = service.run_batch(fig48_queries, max_workers=4)
        assert [r.segments for r in threaded.results] == [
            r.segments for r in solo.results
        ]

    def test_threaded_batch_counters_exact(self, engine):
        """Under max_workers > 1 the dedup counters stay exact: every
        bounding_region call is counted once, and each distinct region is
        computed exactly once (concurrent requesters wait, not recompute)."""
        fresh = QueryService(engine)
        durations = (600, 900, 1200, 1500)
        batch = [
            SQuery(CENTER, T, duration, prob)
            for duration in durations
            for prob in (0.2, 0.4, 0.8)
        ]
        report = fresh.run_batch(batch, max_workers=8)
        calls = 2 * len(batch)  # one far + one near region per query
        assert report.regions_computed + report.regions_reused == calls
        # 4 distinct (seeds, slot, steps) shapes x far/near.
        assert report.regions_computed == 2 * len(durations)
        assert report.regions_reused == calls - 2 * len(durations)
        # A second threaded pass is served entirely from the service cache.
        again = fresh.run_batch(batch, max_workers=8)
        assert again.regions_computed == 0
        assert again.regions_reused == calls

    def test_batch_report_rows(self, service):
        report = service.run_batch([SQuery(CENTER, T, 600, 0.2)])
        rows = dict(report.as_rows())
        assert rows["Queries"] == "1"
        assert "hit rate" in rows["Buffer pool"]

    def test_random_workload_batch(self, test_dataset, service):
        workload = QueryWorkload(test_dataset.network, seed=3)
        batch = workload.mixed_batch(4, 2, start_time_s=T)
        report = service.run_batch(batch)
        assert len(report.results) == 6
        assert report.total_cost_ms > 0

    def test_run_workload_batch_and_formatting(self, engine, test_dataset):
        from repro.eval.runner import run_workload_batch
        from repro.eval.tables import (
            format_batch_report,
            format_cache_effectiveness,
        )

        workload = QueryWorkload(test_dataset.network, seed=5)
        report = run_workload_batch(
            engine, workload.s_queries(3, start_time_s=T)
        )
        assert len(report.results) == 3
        table = format_batch_report("throughput batch", report)
        assert "Page reads" in table and "Buffer pool" in table
        cache = format_cache_effectiveness("cache", report.io)
        assert "hit rate" in cache
