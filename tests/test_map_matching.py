"""Tests for the map matcher (§3.1) and the pre-processing pipeline."""

import pytest

from repro.network.generator import grid_city
from repro.preprocessing.pipeline import PreprocessingPipeline
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator
from repro.trajectory.map_matching import MapMatcher, MatcherConfig
from repro.trajectory.model import GPSPoint, RawTrajectory
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=2, seed=3)


@pytest.fixture(scope="module")
def matcher(network):
    return MapMatcher(network)


def straight_drive(network, segment_ids, speed=8.0, interval=30.0):
    """Noise-free GPS along a chain of segments."""
    points = []
    time_s = 1000.0
    for sid in segment_ids:
        seg = network.segment(sid)
        start, end = seg.shape[0], seg.shape[-1]
        steps = max(2, int(seg.length / (speed * interval)) + 1)
        for i in range(steps):
            t = i / steps
            points.append(
                GPSPoint(
                    trajectory_id=0,
                    position=Point(
                        start.x + t * (end.x - start.x),
                        start.y + t * (end.y - start.y),
                    ),
                    time_s=time_s,
                    speed_mps=speed,
                )
            )
            time_s += interval
    return RawTrajectory(trajectory_id=0, taxi_id=0, date=0, points=points)


class TestCandidates:
    def test_candidates_near_road(self, network, matcher):
        seg = network.segment(0)
        found = matcher.candidates(seg.midpoint)
        assert any(sid == 0 for sid, _ in found)

    def test_candidates_sorted_by_distance(self, network, matcher):
        seg = network.segment(0)
        found = matcher.candidates(seg.midpoint.translated(5, 5))
        distances = [d for _, d in found]
        assert distances == sorted(distances)

    def test_no_candidates_far_away(self, matcher):
        assert matcher.candidates(Point(1e6, 1e6)) == []

    def test_candidate_cap(self, network):
        config = MatcherConfig(max_candidates=2, search_radius_m=2000.0)
        matcher = MapMatcher(network, config=config)
        seg = network.segment(0)
        assert len(matcher.candidates(seg.midpoint)) <= 2


class TestMatching:
    def test_empty_trajectory(self, matcher):
        raw = RawTrajectory(trajectory_id=1, taxi_id=0, date=0, points=[])
        matched = matcher.match(raw)
        assert matched.visits == []
        assert matched.trajectory_id == 1

    def test_all_points_offroad(self, matcher):
        raw = RawTrajectory(
            trajectory_id=1, taxi_id=0, date=0,
            points=[
                GPSPoint(1, Point(1e6, 1e6), 0.0, 5.0),
                GPSPoint(1, Point(1e6, 1e6), 30.0, 5.0),
            ],
        )
        assert matcher.match(raw).visits == []

    def test_straight_route_recovered(self, network, matcher):
        route = [0]
        while len(route) < 4:
            succs = network.successors(route[-1])
            route.append(succs[0])
        raw = straight_drive(network, route)
        matched = matcher.match(raw)
        # Every true segment (or its twin) should appear, in order.
        matched_roads = [
            network.segment(v.segment_id).canonical_id() for v in matched.visits
        ]
        expected_roads = [network.segment(s).canonical_id() for s in route]
        assert [r for r in matched_roads if r in expected_roads]
        missing = set(expected_roads) - set(matched_roads)
        assert not missing

    def test_match_is_monotone(self, network, matcher):
        route = [0] + network.successors(0)[:1]
        raw = straight_drive(network, route)
        matcher.match(raw).check_monotone()

    def test_ground_truth_recovery_rate(self, network):
        """Match generator GPS against the ground-truth route."""
        config = FleetConfig(
            num_taxis=2, num_days=1,
            day_start_s=9 * 3600.0, day_end_s=9.8 * 3600.0,
        )
        generator = TaxiFleetGenerator(network, config=config)
        matcher = MapMatcher(network)
        total, recovered = 0, 0
        for raw, truth in generator.generate_raw():
            matched_roads = {
                network.segment(v.segment_id).canonical_id()
                for v in matcher.match(raw).visits
            }
            truth_roads = {
                network.segment(v.segment_id).canonical_id()
                for v in truth.visits
            }
            total += len(truth_roads)
            recovered += len(truth_roads & matched_roads)
        assert total > 0
        assert recovered / total > 0.8  # >80% of roads recovered


class TestPipeline:
    def test_pipeline_end_to_end(self, network):
        config = FleetConfig(
            num_taxis=2, num_days=2,
            day_start_s=9 * 3600.0, day_end_s=9.5 * 3600.0,
        )
        generator = TaxiFleetGenerator(network, config=config)
        raws = [raw for raw, _ in generator.generate_raw()]
        pipeline = PreprocessingPipeline(network, granularity_m=300.0)
        db = pipeline.run(raws, num_taxis=2, num_days=2)
        assert pipeline.report.segments_after > pipeline.report.segments_before
        assert pipeline.report.trajectories_in == 4
        assert len(db) == pipeline.report.trajectories_matched
        assert pipeline.report.visits_out > 0
        # The matched DB must be on the re-segmented network's id space.
        for trajectory in db:
            for visit in trajectory.visits:
                assert pipeline.network.has_segment(visit.segment_id)

    def test_pipeline_drops_unmatchable(self, network):
        pipeline = PreprocessingPipeline(network, granularity_m=300.0)
        bad = RawTrajectory(
            trajectory_id=0, taxi_id=0, date=0,
            points=[GPSPoint(0, Point(1e7, 1e7), 0.0, 1.0)],
        )
        db = pipeline.run([bad], num_taxis=1, num_days=1)
        assert len(db) == 0
        assert pipeline.report.dropped_empty == 1
