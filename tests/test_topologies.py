"""End-to-end checks on alternative city topologies.

The evaluation uses the grid city; these tests prove the whole stack —
generation, indexing, bounding regions, trace-back — is topology-agnostic
by running it on ring-radial and random-planar networks.
"""

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.datasets.shenzhen_like import ShenzhenLikeConfig, build_shenzhen_like
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time


def small_config(topology: str) -> ShenzhenLikeConfig:
    return ShenzhenLikeConfig(
        topology=topology,
        grid_rows=5,
        grid_cols=6,
        spacing_m=1200.0,
        granularity_m=600.0,
        num_taxis=20,
        num_days=6,
        seed=9,
    )


@pytest.fixture(scope="module", params=["ring_radial", "random_planar"])
def topo_engine(request):
    dataset = build_shenzhen_like(small_config(request.param))
    engine = ReachabilityEngine(dataset.network, dataset.database)
    engine.st_index(300)
    return dataset, engine


class TestTopologyVariants:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_shenzhen_like(small_config("mobius"))

    def test_network_valid(self, topo_engine):
        dataset, _ = topo_engine
        dataset.network.check_invariants()
        assert dataset.network.num_segments > 0

    def test_query_answers(self, topo_engine):
        dataset, engine = topo_engine
        center = dataset.network.bounds().center
        query = SQuery(center, day_time(11), 600, 0.2)
        ours = engine.s_query(query)
        baseline = engine.s_query(query, algorithm="es")
        # TBS never misses what ES finds; over-claim bounded by Bmin.
        assert baseline.segments - ours.segments == set()
        if ours.min_region is not None:
            assert (
                ours.segments - baseline.segments <= ours.min_region.cover
            )

    def test_region_grows_with_duration(self, topo_engine):
        dataset, engine = topo_engine
        center = dataset.network.bounds().center
        short = engine.s_query(SQuery(center, day_time(11), 300, 0.2))
        long = engine.s_query(SQuery(center, day_time(11), 1200, 0.2))
        assert len(long.segments) >= len(short.segments)

    def test_determinism(self, topo_engine):
        dataset, _ = topo_engine
        rebuilt = build_shenzhen_like(dataset.config)
        assert (
            rebuilt.database.stats().num_visits
            == dataset.database.stats().num_visits
        )
