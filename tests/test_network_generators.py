"""Tests for the synthetic road-network generators and re-segmentation."""

import pytest

from repro.network.generator import grid_city, random_planar_city, ring_radial_city
from repro.network.model import RoadLevel
from repro.network.segmentation import resegment
from repro.spatial.geometry import Point


class TestGridCity:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_city(rows=1, cols=5)

    def test_node_and_segment_counts(self):
        net = grid_city(rows=4, cols=5, spacing=100.0, primary_every=0)
        assert net.num_nodes == 20
        # 4*4 horizontal + 3*5 vertical roads, two directed segments each.
        assert net.num_segments == 2 * (4 * 4 + 3 * 5)

    def test_center_origin(self):
        net = grid_city(rows=5, cols=5, spacing=100.0)
        assert net.bounds().center.distance_to(Point(0, 0)) < 1e-9

    def test_primary_rows(self):
        net = grid_city(rows=5, cols=5, spacing=100.0, primary_every=2)
        levels = {seg.level for seg in net.segments()}
        assert levels == {RoadLevel.PRIMARY, RoadLevel.SECONDARY}

    def test_no_primary_when_disabled(self):
        net = grid_city(rows=3, cols=3, primary_every=0)
        assert all(s.level == RoadLevel.SECONDARY for s in net.segments())

    def test_jitter_deterministic(self):
        a = grid_city(rows=3, cols=3, jitter=30.0, seed=5)
        b = grid_city(rows=3, cols=3, jitter=30.0, seed=5)
        assert [p for _, p in a.nodes()] == [p for _, p in b.nodes()]

    def test_invariants(self):
        grid_city(rows=6, cols=4, spacing=250.0).check_invariants()


class TestRingRadialCity:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            ring_radial_city(rings=0)
        with pytest.raises(ValueError):
            ring_radial_city(spokes=2)

    def test_structure(self):
        net = ring_radial_city(rings=3, spokes=6, ring_spacing=500.0)
        assert net.num_nodes == 1 + 3 * 6
        net.check_invariants()

    def test_rings_are_primary(self):
        net = ring_radial_city(rings=2, spokes=4)
        # The outermost nodes sit on a primary ring.
        primaries = [s for s in net.segments() if s.level == RoadLevel.PRIMARY]
        assert primaries

    def test_connected_from_center(self):
        from repro.network.paths import dijkstra_from_segment

        net = ring_radial_city(rings=3, spokes=6)
        start = next(iter(net.segment_ids()))
        reached = dijkstra_from_segment(net, start)
        assert len(reached) == net.num_segments


class TestRandomPlanarCity:
    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            random_planar_city(num_nodes=3)

    def test_deterministic(self):
        a = random_planar_city(num_nodes=30, seed=9)
        b = random_planar_city(num_nodes=30, seed=9)
        assert a.num_segments == b.num_segments

    def test_has_both_levels(self):
        net = random_planar_city(num_nodes=60, seed=2, primary_fraction=0.2)
        levels = {s.level for s in net.segments()}
        assert levels == {RoadLevel.PRIMARY, RoadLevel.SECONDARY}

    def test_invariants(self):
        random_planar_city(num_nodes=40, seed=4).check_invariants()


class TestResegmentation:
    def test_bad_granularity(self, tiny_network):
        with pytest.raises(ValueError):
            resegment(tiny_network, granularity=0)

    def test_no_split_when_short_enough(self, tiny_network):
        result = resegment(tiny_network, granularity=500.0)
        assert result.network.num_segments == tiny_network.num_segments

    def test_split_counts(self, tiny_network):
        # 500 m roads at 200 m granularity -> ceil(500/200) = 3 pieces each.
        result = resegment(tiny_network, granularity=200.0)
        assert result.network.num_segments == tiny_network.num_segments * 3
        for old_id, pieces in result.piece_map.items():
            assert len(pieces) == 3
            for piece in pieces:
                assert result.origin_map[piece] == old_id

    def test_total_length_preserved(self, tiny_network):
        result = resegment(tiny_network, granularity=180.0)
        assert result.network.total_length() == pytest.approx(
            tiny_network.total_length(), rel=1e-6
        )

    def test_pieces_never_exceed_granularity(self, tiny_network):
        granularity = 170.0
        result = resegment(tiny_network, granularity=granularity)
        for seg in result.network.segments():
            assert seg.length <= granularity + 1e-6

    def test_twin_pairing_preserved(self, tiny_network):
        result = resegment(tiny_network, granularity=200.0)
        net = result.network
        for seg in net.segments():
            assert seg.twin_id is not None
            twin = net.segment(seg.twin_id)
            assert twin.twin_id == seg.segment_id
            assert twin.start_node == seg.end_node
            assert twin.end_node == seg.start_node
            assert twin.length == pytest.approx(seg.length)

    def test_chain_connectivity(self, tiny_network):
        result = resegment(tiny_network, granularity=200.0)
        net = result.network
        for old_id, pieces in result.piece_map.items():
            for a, b in zip(pieces, pieces[1:]):
                assert net.segment(a).end_node == net.segment(b).start_node

    def test_levels_inherited(self):
        net = grid_city(rows=3, cols=3, spacing=900.0, primary_every=2)
        result = resegment(net, granularity=300.0)
        for piece, origin in result.origin_map.items():
            assert result.network.segment(piece).level == net.segment(origin).level

    def test_invariants(self, tiny_network):
        resegment(tiny_network, granularity=120.0).network.check_invariants()
