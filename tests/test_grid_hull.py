"""Tests for the grid index and the convex hull / polygon helpers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BBox, Point
from repro.spatial.grid import GridIndex
from repro.spatial.hull import convex_hull, point_in_polygon, polygon_area

BOUNDS = BBox(0, 0, 1000, 1000)


def random_items(n: int, seed: int) -> list[tuple[BBox, int]]:
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 990), rng.uniform(0, 990)
        s = rng.uniform(1, 30)
        out.append((BBox(x, y, min(1000, x + s), min(1000, y + s)), i))
    return out


class TestGridIndex:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(BOUNDS, 0)

    def test_empty(self):
        grid = GridIndex(BOUNDS, 100)
        assert len(grid) == 0
        assert grid.search(BOUNDS) == []
        assert grid.nearest(Point(1, 1)) == []

    def test_insert_search(self):
        grid = GridIndex(BOUNDS, 100)
        grid.insert(BBox(10, 10, 20, 20), "a")
        grid.insert(BBox(500, 500, 520, 520), "b")
        assert grid.search(BBox(0, 0, 100, 100)) == ["a"]
        assert sorted(grid.search(BOUNDS)) == ["a", "b"]

    def test_item_spanning_cells_not_duplicated(self):
        grid = GridIndex(BOUNDS, 100)
        grid.insert(BBox(50, 50, 350, 350), "wide")
        assert grid.search(BBox(0, 0, 400, 400)) == ["wide"]

    def test_search_point(self):
        grid = GridIndex(BOUNDS, 100)
        grid.insert(BBox(10, 10, 30, 30), "a")
        assert grid.search_point(Point(20, 20)) == ["a"]
        assert grid.search_point(Point(90, 90)) == []

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_window_matches_brute_force(self, seed):
        rng = random.Random(seed)
        items = random_items(rng.randint(1, 100), seed)
        grid = GridIndex(BOUNDS, rng.choice([50, 100, 250]))
        for box, item in items:
            grid.insert(box, item)
        window = BBox(
            rng.uniform(0, 500), rng.uniform(0, 500),
            rng.uniform(500, 1000), rng.uniform(500, 1000),
        )
        expected = sorted(i for box, i in items if box.intersects(window))
        assert sorted(grid.search(window)) == expected

    def test_nearest_finds_closest(self):
        grid = GridIndex(BOUNDS, 100)
        for i in range(10):
            grid.insert(BBox(i * 100, 0, i * 100 + 5, 5), i)
        got = grid.nearest(
            Point(420, 0), k=1,
            distance=lambda p, item: abs(p.x - item * 100),
        )
        assert got == [4]

    def test_items_iteration_unique(self):
        grid = GridIndex(BOUNDS, 50)
        grid.insert(BBox(0, 0, 400, 400), "big")
        grid.insert(BBox(10, 10, 20, 20), "small")
        assert sorted(grid.items()) == ["big", "small"]


class TestConvexHull:
    def test_triangle(self):
        pts = [Point(0, 0), Point(4, 0), Point(2, 3), Point(2, 1)]
        hull = convex_hull(pts)
        assert set(hull) == {Point(0, 0), Point(4, 0), Point(2, 3)}

    def test_degenerate_cases(self):
        assert convex_hull([]) == []
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]
        assert convex_hull([Point(1, 1), Point(1, 1)]) == [Point(1, 1)]
        two = convex_hull([Point(0, 0), Point(1, 1)])
        assert len(two) == 2

    def test_collinear(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)]
        hull = convex_hull(pts)
        assert hull == sorted(set(pts))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.builds(Point, st.floats(-100, 100), st.floats(-100, 100)),
        min_size=3, max_size=60,
    ))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return  # collinear input
        for p in pts:
            assert point_in_polygon(p, hull)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.builds(Point, st.floats(-100, 100), st.floats(-100, 100)),
        min_size=3, max_size=40,
    ))
    def test_hull_idempotent(self, pts):
        hull = convex_hull(pts)
        assert set(convex_hull(hull)) == set(hull)


class TestPolygon:
    UNIT_SQUARE = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]

    def test_area_square(self):
        assert polygon_area(self.UNIT_SQUARE) == pytest.approx(1.0)

    def test_area_triangle(self):
        tri = [Point(0, 0), Point(4, 0), Point(0, 3)]
        assert polygon_area(tri) == pytest.approx(6.0)

    def test_area_degenerate(self):
        assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0

    def test_point_inside(self):
        assert point_in_polygon(Point(0.5, 0.5), self.UNIT_SQUARE)

    def test_point_outside(self):
        assert not point_in_polygon(Point(2, 0.5), self.UNIT_SQUARE)

    def test_point_on_edge_counts_inside(self):
        assert point_in_polygon(Point(0.5, 0.0), self.UNIT_SQUARE)

    def test_point_on_vertex_counts_inside(self):
        assert point_in_polygon(Point(0, 0), self.UNIT_SQUARE)

    def test_too_few_vertices(self):
        assert not point_in_polygon(Point(0, 0), [Point(0, 0), Point(1, 1)])
