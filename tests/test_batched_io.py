"""Batched zero-copy I/O layer: accounting-equivalence and concurrency tests.

The contract under test (ISSUE 5): the batched read path — extent
pointers, ``PageStore.read_many``, ``BufferPool.get_pages``, the
ST-Index wave gathers — charges *exactly* what the preserved scalar
read path (a sequential loop of ``PageStore.read`` calls) charges:
same ``DiskStats`` (page reads/writes, bytes, pool hits/misses/
evictions), same payloads, including under threaded gathers.  Plus the
satellite fixes: group-commit write amplification, the single-flight
double-miss race, and weakref hygiene in ``SimulatedDisk``.
"""

import gc
import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.st_index import STIndex
from repro.io.persist import load_st_index, save_st_index
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore, RecordPointer


def make_records(seed: int, count: int, max_size: int = 300) -> list[bytes]:
    rng = random.Random(seed)
    return [
        bytes(rng.randrange(256) for _ in range(rng.randrange(max_size + 1)))
        for _ in range(count)
    ]


def build_store(
    payloads, page_size: int, capacity: int, shards: int = 8
) -> tuple[SimulatedDisk, PageStore, BufferPool, list[RecordPointer]]:
    disk = SimulatedDisk(page_size=page_size)
    store = PageStore(disk)
    pointers = [store.append(p) for p in payloads]
    store.flush()
    pool = BufferPool(disk, capacity=capacity, shards=shards)
    return disk, store, pool, pointers


class TestGroupCommit:
    def test_build_write_amplification(self):
        """Appending charges ~one page_write per page, not per record."""
        page_size = 64
        payloads = make_records(3, 200, max_size=50)
        disk = SimulatedDisk(page_size=page_size)
        store = PageStore(disk)
        for payload in payloads:
            store.append(payload)
        store.flush()
        total = sum(len(p) for p in payloads)
        floor = -(-total // page_size)  # ceil(bytes / page_size)
        assert disk.stats.page_writes >= floor
        # Old behavior charged >= one write per record (200 here); group
        # commit stays within a whisker of the packed-page floor (the
        # slack covers records that straddle a boundary).
        assert disk.stats.page_writes <= floor + 2
        assert disk.stats.page_writes < len(payloads) // 2

    def test_st_index_build_write_amplification(self, engine):
        """An ST-Index build charges ≈ ceil(bytes/page_size) page writes."""
        st_index = STIndex(engine.network, 300)
        st_index.build(engine.database)
        stats = st_index.disk.stats
        page_size = st_index.disk.page_size
        floor = -(-stats.bytes_written // page_size)
        assert stats.page_writes >= floor
        # The only slack over the packed-page floor is the final tail
        # flush of the group commit.
        assert stats.page_writes <= floor + 2
        assert stats.page_writes < st_index.stats.num_entries

    def test_flush_is_idempotent(self):
        disk = SimulatedDisk(page_size=32)
        store = PageStore(disk)
        store.append(b"abc")
        store.flush()
        writes = disk.stats.page_writes
        store.flush()
        assert disk.stats.page_writes == writes

    def test_dirty_tail_read_flushes_first(self):
        disk = SimulatedDisk(page_size=32)
        store = PageStore(disk)
        ptr = store.append(b"unflushed tail bytes")
        assert store.read(ptr) == b"unflushed tail bytes"
        assert disk.stats.page_writes == 1  # the read forced the commit


class TestExtentPointers:
    def test_pointer_is_contiguous_extent(self):
        disk = SimulatedDisk(page_size=16)
        store = PageStore(disk)
        ptr = store.append(bytes(range(100)))
        assert ptr.num_pages == -(-100 // 16) + (1 if ptr.offset else 0)
        assert ptr.page_ids == tuple(
            range(ptr.first_page, ptr.first_page + ptr.num_pages)
        )

    def test_interleaved_stores_stay_contiguous(self):
        """Two stores on one disk: spilling records restart on fresh extents."""
        disk = SimulatedDisk(page_size=16)
        store_a = PageStore(disk)
        store_b = PageStore(disk)
        payloads = make_records(11, 40, max_size=60)
        pointers = []
        for i, payload in enumerate(payloads):
            store = store_a if i % 2 == 0 else store_b
            pointers.append((store, store.append(payload)))
        store_a.flush()
        store_b.flush()
        for (store, ptr), payload in zip(pointers, payloads):
            assert store.read(ptr) == payload

    def test_empty_record_still_charges_its_page(self):
        disk = SimulatedDisk(page_size=16)
        store = PageStore(disk)
        ptr = store.append(b"")
        store.flush()
        before = disk.snapshot()
        assert store.read(ptr) == b""
        assert (disk.snapshot() - before).page_reads == 1


def assert_stats_equal(a: SimulatedDisk, b: SimulatedDisk) -> None:
    sa, sb = a.snapshot(), b.snapshot()
    assert sa == sb, f"DiskStats diverged: {sa} != {sb}"


class TestReadManyEquivalence:
    """read_many == sequential read loop, counter for counter."""

    def run_pair(self, payloads, accesses, page_size, capacity, shards=8):
        d1, s1, p1, ptrs1 = build_store(payloads, page_size, capacity, shards)
        d2, s2, p2, ptrs2 = build_store(payloads, page_size, capacity, shards)
        seq1 = [ptrs1[i] for i in accesses]
        seq2 = [ptrs2[i] for i in accesses]
        scalar = [s1.read(ptr, pool=p1) for ptr in seq1]
        batched = s2.read_many(seq2, pool=p2)
        assert scalar == batched
        assert scalar == [payloads[i] for i in accesses]
        assert_stats_equal(d1, d2)
        return d1.snapshot()

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(8, 128),
        st.sampled_from([0, 2, 7, 64]),
    )
    def test_randomized_equivalence(self, seed, page_size, capacity):
        rng = random.Random(seed)
        payloads = make_records(seed, rng.randrange(1, 30), max_size=3 * page_size)
        accesses = [
            rng.randrange(len(payloads))
            for _ in range(rng.randrange(1, 60))
        ]
        self.run_pair(payloads, accesses, page_size, capacity)

    def test_duplicates_in_one_wave_charge_every_access(self):
        payloads = make_records(5, 4, max_size=40)
        stats = self.run_pair([*payloads], [0, 0, 1, 0, 2, 2, 3], 16, 64)
        # 7 accesses happened even though only 4 records exist.
        assert stats.pool_hits + stats.pool_misses >= 7

    def test_capacity_zero_pool(self):
        payloads = make_records(6, 10, max_size=50)
        accesses = [i % len(payloads) for i in range(30)]
        stats = self.run_pair(payloads, accesses, 16, 0)
        assert stats.pool_hits == 0
        assert stats.pool_misses == stats.page_reads

    def test_no_pool_matches_per_page_charges(self):
        payloads = make_records(7, 12, max_size=70)
        d1, s1, _, ptrs1 = build_store(payloads, 16, 8)
        d2, s2, _, ptrs2 = build_store(payloads, 16, 8)
        for ptr in ptrs1:
            s1.read(ptr)
        s2.read_many(ptrs2)
        assert d1.stats == d2.stats
        assert d1.stats.page_reads == sum(p.num_pages for p in ptrs1)

    def test_eviction_pressure_equivalence(self):
        """Tiny pools evict constantly; both paths must agree anyway."""
        payloads = make_records(8, 25, max_size=90)
        rng = random.Random(8)
        accesses = [rng.randrange(len(payloads)) for _ in range(200)]
        stats = self.run_pair(payloads, accesses, 16, 4, shards=2)
        assert stats.pool_evictions > 0

    def test_threaded_gather_matches_sequential(self):
        """Concurrent read_many equals the sequential scalar loop's stats.

        The pool is sized to the working set, so no evictions occur and
        single-flight misses make hit/miss totals schedule-independent.
        """
        payloads = make_records(9, 30, max_size=60)
        rng = random.Random(9)
        waves = [
            [rng.randrange(len(payloads)) for _ in range(12)]
            for _ in range(8)
        ]
        d1, s1, p1, ptrs1 = build_store(payloads, 16, 1024)
        for wave in waves:
            for i in wave:
                s1.read(ptrs1[i], pool=p1)
        d2, s2, p2, ptrs2 = build_store(payloads, 16, 1024)
        barrier = threading.Barrier(len(waves))
        errors: list[Exception] = []

        def gather(wave):
            try:
                barrier.wait()
                got = s2.read_many([ptrs2[i] for i in wave], pool=p2)
                assert got == [payloads[i] for i in wave]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=gather, args=(wave,)) for wave in waves
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert_stats_equal(d1, d2)


class TestStripedPool:
    def test_shards_clamped_to_capacity(self):
        disk = SimulatedDisk()
        assert BufferPool(disk, capacity=4, shards=8).num_shards == 4
        assert BufferPool(disk, capacity=100, shards=8).num_shards == 8
        assert BufferPool(disk, capacity=0, shards=8).num_shards == 1

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            BufferPool(SimulatedDisk(), capacity=4, shards=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([1, 2, 3, 8]))
    def test_get_pages_equals_get_page_loop(self, seed, shards):
        """Batch charging == per-page loop, under eviction pressure too."""
        rng = random.Random(seed)
        capacity = rng.choice([0, 3, 8, 32])
        d1 = SimulatedDisk(page_size=8)
        d2 = SimulatedDisk(page_size=8)
        num_pages = 20
        for disk in (d1, d2):
            disk.allocate(num_pages)
            for page in range(num_pages):
                disk.write_page(page, bytes([page]) * (page % 9))
        p1 = BufferPool(d1, capacity=capacity, shards=shards)
        p2 = BufferPool(d2, capacity=capacity, shards=shards)
        for _ in range(rng.randrange(1, 8)):
            batch = [rng.randrange(num_pages) for _ in range(rng.randrange(1, 25))]
            for page in batch:
                p1.get_page(page)
            p2.get_pages(batch)
            assert (p1.hits, p1.misses, p1.evictions) == (
                p2.hits, p2.misses, p2.evictions,
            )
            assert d1.stats == d2.stats

    def test_single_flight_double_miss_race(self):
        """Two threads missing the same page charge exactly one disk read."""
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"hot page")
        pool = BufferPool(disk, capacity=64)
        disk.reset_stats()
        barrier = threading.Barrier(2)
        results: list[bytes] = []

        def racer():
            barrier.wait()  # both threads miss "simultaneously"
            results.append(pool.get_page(page))

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [b"hot page", b"hot page"]
        assert disk.stats.page_reads == 1
        assert pool.misses == 1
        assert pool.hits == 1

    def test_many_threads_many_pages_deterministic_stats(self):
        disk = SimulatedDisk(page_size=8)
        disk.allocate(16)
        for page in range(16):
            disk.write_page(page, bytes([page]))
        pool = BufferPool(disk, capacity=64)
        disk.reset_stats()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            pool.get_pages(list(range(16)))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 8 workers x 16 accesses; each page misses exactly once overall.
        assert disk.stats.page_reads == 16
        assert pool.misses == 16
        assert pool.hits == 8 * 16 - 16


class TestDiskWeakrefHygiene:
    def test_snapshot_prunes_dead_pools(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"x")
        pool = BufferPool(disk, capacity=4)
        pool.get_page(page)
        assert disk.snapshot().pool_misses == 1
        del pool
        gc.collect()
        stats = disk.snapshot()
        assert stats.pool_misses == 0  # retired pool no longer counted
        assert disk._pools == []  # and its weakref is gone

    def test_reattach_does_not_double_count(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"x")
        pool = BufferPool(disk, capacity=4)
        disk.attach_pool(pool)  # second attach must be a no-op
        pool.get_page(page)
        assert disk.snapshot().pool_misses == 1
        assert len(disk._pools) == 1

    def test_retired_pools_do_not_accumulate(self):
        disk = SimulatedDisk()
        disk.allocate()
        disk.write_page(0, b"x")
        for _ in range(50):
            BufferPool(disk, capacity=2).get_page(0)
        gc.collect()
        disk.snapshot()
        assert len(disk._pools) <= 1


class TestConcurrentAppends:
    def test_allocate_after_is_atomic_check_and_extend(self):
        disk = SimulatedDisk(page_size=16)
        first = disk.allocate()
        extended = disk.allocate_after(first, 2)
        assert extended == first + 1  # still last -> contiguous extent
        other = disk.allocate()
        assert disk.allocate_after(extended + 1, 1) is None  # no longer last
        assert disk.allocate_after(other, 1) == other + 1

    def test_threaded_cross_store_appends_round_trip(self):
        """Stores sharing a disk: racing spills never corrupt an extent."""
        disk = SimulatedDisk(page_size=32)
        stores = [PageStore(disk) for _ in range(3)]
        barrier = threading.Barrier(3)
        results: list[list[tuple[PageStore, RecordPointer, bytes]]] = [
            [] for _ in range(3)
        ]

        def appender(worker: int):
            rng = random.Random(100 + worker)
            store = stores[worker]
            barrier.wait()
            for _ in range(150):
                # Mostly spilling records, to exercise the extend path.
                payload = bytes([worker]) * rng.randrange(20, 120)
                results[worker].append((store, store.append(payload), payload))

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for store in stores:
            store.flush()
        for worker_results in results:
            for store, pointer, payload in worker_results:
                assert store.read(pointer) == payload

    def test_threaded_appends_round_trip(self):
        """The tail lock keeps concurrent appends' extents disjoint."""
        disk = SimulatedDisk(page_size=32)
        store = PageStore(disk)
        barrier = threading.Barrier(4)
        results: list[list[tuple[RecordPointer, bytes]]] = [[] for _ in range(4)]

        def appender(worker: int):
            rng = random.Random(worker)
            barrier.wait()
            for _ in range(200):
                payload = bytes([worker]) * rng.randrange(0, 90)
                results[worker].append((store.append(payload), payload))

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.flush()
        for worker_results in results:
            for pointer, payload in worker_results:
                assert store.read(pointer) == payload


class TestConIndexConcurrency:
    def test_threaded_lazy_materialization_single_flight(self, engine):
        """Workers racing the same uncomputed entries charge each once."""
        from repro.core.con_index import ConnectionIndex

        con = ConnectionIndex(
            engine.network, engine.database, 300, entry_cache_size=4
        )
        keys = [(sid, 130) for sid in sorted(engine.network.segment_ids())[:12]]
        barrier = threading.Barrier(4)
        errors: list[Exception] = []

        def worker():
            try:
                barrier.wait()
                for segment_id, slot in keys:
                    con.far(segment_id, slot)
                    con.near(segment_id, slot)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Single flight: each (kind, segment, slot) materialised exactly
        # once despite 4 racing workers and a tiny decoded-entry LRU.
        assert con.num_entries == 2 * len(keys)
        assert con.expansions == 2 * len(keys)


class TestGatherMemoInvalidation:
    @pytest.fixture()
    def index(self, engine) -> STIndex:
        """A private built index — these tests append, so the shared
        session engine's index must stay untouched."""
        fresh = STIndex(engine.network, 300)
        fresh.build(engine.database)
        return fresh

    def _one_trajectory(self, segment_id: int, trajectory_id: int):
        from repro.trajectory.model import MatchedTrajectory, SegmentVisit

        return MatchedTrajectory(
            trajectory_id=trajectory_id,
            taxi_id=1,
            date=0,
            visits=[
                SegmentVisit(segment_id=segment_id, time_s=650.0, speed_mps=5.0)
            ],
        )

    def test_append_invalidates_window_gathers(self, index):
        segment_id = next(iter(index._directory))[0]
        plan = index.window_plan(600.0, 1200.0)
        before = index.gather_window_columns((segment_id,), plan)[0][0]
        index.append_trajectories([self._one_trajectory(segment_id, 777_001)])
        after = index.gather_window_columns((segment_id,), plan)[0][0]
        assert after.size == before.size + 1

    def test_append_during_gather_does_not_resurrect_stale_entry(self, index):
        """An append racing a gather must not leave a pre-append memo entry.

        Deterministic version of the race: the gather walks the directory
        (and snapshots its epoch), then an append lands before the memo
        insert — emulated by triggering the append from the pool-charging
        hook that runs between the two.
        """
        segment_id = next(iter(index._directory))[0]
        plan = index.window_plan(600.0, 1200.0)
        original = index.pool.get_pages
        fired = []

        def charging_hook(page_ids):
            if not fired:
                fired.append(True)
                index.append_trajectories(
                    [self._one_trajectory(segment_id, 777_002)]
                )
            return original(page_ids)

        index.pool.get_pages = charging_hook
        try:
            stale = index.gather_window_columns((segment_id,), plan)[0][0]
        finally:
            index.pool.get_pages = original
        # The raced gather itself may serve pre-append data, but it must
        # not be memoized: the next gather sees the appended visit.
        fresh = index.gather_window_columns((segment_id,), plan)[0][0]
        assert fresh.size == stale.size + 1


class TestSTIndexPersistence:
    def test_round_trip_serves_identical_records(self, engine, tmp_path):
        index = engine.st_index(300)
        path = save_st_index(index, tmp_path / "st_index.npz")
        loaded = load_st_index(path, index.network)
        assert loaded.delta_t_s == index.delta_t_s
        assert loaded.stats.num_entries == index.stats.num_entries
        # Stable under repeated cycles: reloading must not grow the disk
        # (the restored store opens its tail lazily, on first append).
        again = load_st_index(
            save_st_index(loaded, tmp_path / "st_index2.npz"), index.network
        )
        assert again.disk.num_pages == loaded.disk.num_pages
        keys = sorted(index._directory)
        assert sorted(loaded._directory) == keys
        for segment_id, slot in keys[:50]:
            assert loaded.time_entries(segment_id, slot) == index.time_entries(
                segment_id, slot
            )

    def test_loaded_index_charges_reads(self, engine, tmp_path):
        index = engine.st_index(300)
        path = save_st_index(index, tmp_path / "st_index.npz")
        loaded = load_st_index(path, index.network)
        (segment_id, slot) = next(iter(loaded._directory))
        before = loaded.disk.snapshot()
        loaded.time_entries(segment_id, slot)
        diff = loaded.disk.snapshot() - before
        assert diff.pool_hits + diff.pool_misses >= 1

    def test_loaded_index_accepts_appends(self, engine, tmp_path):
        from repro.trajectory.model import MatchedTrajectory, SegmentVisit

        index = engine.st_index(300)
        path = save_st_index(index, tmp_path / "st_index.npz")
        loaded = load_st_index(path, index.network)
        segment_id = next(iter(loaded._directory))[0]
        trajectory = MatchedTrajectory(
            trajectory_id=999_999,
            taxi_id=1,
            date=0,
            visits=[
                SegmentVisit(segment_id=segment_id, time_s=600.0, speed_mps=5.0)
            ],
        )
        touched = loaded.append_trajectories([trajectory])
        assert touched == 1
        entries = loaded.time_entries(segment_id, loaded.slot_of(600.0))
        assert any(
            trajectory_id == 999_999
            for visits in entries.values()
            for trajectory_id, _ in visits
        )

    def test_corrupt_pointer_geometry_rejected(self, engine, tmp_path):
        import numpy as np

        index = engine.st_index(300)
        path = save_st_index(index, tmp_path / "st_index.npz")
        with np.load(path) as data:
            fields = {name: data[name] for name in data.files}
        fields["dir_num_pages"] = fields["dir_num_pages"].copy()
        fields["dir_num_pages"][0] = 0  # extent claiming zero pages
        bad = tmp_path / "corrupt.npz"
        np.savez_compressed(bad, **fields)
        with pytest.raises(ValueError, match="outside the persisted page range"):
            load_st_index(bad, index.network)

    def test_unbuilt_index_rejected(self, engine, tmp_path):
        from repro.network.model import RoadNetwork

        fresh = STIndex(engine.network, 300)
        with pytest.raises(ValueError):
            save_st_index(fresh, tmp_path / "nope.npz")
        with pytest.raises(TypeError):
            save_st_index(RoadNetwork(), tmp_path / "nope.npz")
