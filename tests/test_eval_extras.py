"""Additional coverage for the eval harness and viz edge cases."""

import pytest

from repro.core.query import QueryResult, SQuery
from repro.eval.runner import (
    SweepPoint,
    run_interval_sweep,
    run_mquery_duration_sweep,
    run_probability_sweep,
    run_start_time_sweep,
)
from repro.eval.tables import format_savings, format_series
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time
from repro.viz.ascii_map import render_region
from repro.viz.geojson import region_to_geojson

CENTER = Point(0.0, 0.0)
T = day_time(11)


def make_points():
    return [
        SweepPoint(5, "sqmb_tbs", 100.0, 10.0, 90.0, 4.0, 10, 20, "Δt=5min"),
        SweepPoint(5, "es", 1000.0, 50.0, 950.0, 4.0, 10, 200, "ES"),
        SweepPoint(10, "sqmb_tbs", 200.0, 20.0, 180.0, 8.0, 20, 40, "Δt=5min"),
        SweepPoint(10, "es", 1100.0, 55.0, 1045.0, 8.0, 20, 210, "ES"),
    ]


class TestTables:
    def test_format_savings(self):
        text = format_savings(
            "savings", make_points(), ours="sqmb_tbs Δt=5min", baseline="ES",
            x_name="L",
        )
        assert "90%" in text
        assert "82%" in text  # 1 - 200/1100

    def test_format_savings_missing_curve(self):
        text = format_savings(
            "savings", make_points(), ours="nonexistent", baseline="ES"
        )
        assert text.count("%") == 0

    def test_format_series_missing_cells(self):
        points = make_points()[:3]  # es missing at x=10
        text = format_series("fig", points, x_name="L")
        assert "-" in text.splitlines()[-1]

    def test_format_series_alternate_metric(self):
        text = format_series(
            "fig", make_points(), metric="road_length_km",
            value_format="{:.1f}",
        )
        assert "4.0" in text and "8.0" in text


class TestRunnerSweeps:
    def test_probability_sweep_runs(self, engine):
        points = run_probability_sweep(
            engine, CENTER, (0.2, 0.6), T, durations_s=(300,), include_es=False
        )
        assert len(points) == 2
        assert all(p.algorithm == "sqmb_tbs" for p in points)

    def test_start_time_sweep_runs(self, engine):
        points = run_start_time_sweep(
            engine, CENTER, (day_time(10), day_time(12)), durations_s=(300,)
        )
        assert {p.x for p in points} == {day_time(10), day_time(12)}

    def test_interval_sweep_runs(self, engine):
        points = run_interval_sweep(
            engine, CENTER, (300, 600), T, durations_s=(300,),
            include_es=False,
        )
        assert {p.x for p in points} == {5.0, 10.0}

    def test_mquery_sweep_runs(self, engine):
        points = run_mquery_duration_sweep(
            engine, (CENTER, Point(900.0, 700.0)), (300,), T
        )
        assert {p.label for p in points} == {"m-query", "s-query"}


class TestVizEdgeCases:
    def test_empty_region_map(self, test_dataset):
        result = QueryResult()
        art = render_region(result, test_dataset.network, width=30, height=10)
        assert "#" not in art.splitlines()[0]
        assert "unreachable" in art  # legend always present

    def test_empty_region_geojson(self, test_dataset):
        geo = region_to_geojson(QueryResult(), test_dataset.network)
        assert geo["features"] == []

    def test_two_segment_region_no_hull(self, engine, test_dataset):
        result = QueryResult(segments=set(list(
            test_dataset.network.segment_ids())[:2]))
        geo = region_to_geojson(result, test_dataset.network)
        kinds = {f["geometry"]["type"] for f in geo["features"]}
        assert kinds == {"LineString"}

    def test_start_marker_priority(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        art = render_region(result, test_dataset.network, width=50, height=20)
        assert art.count("@") >= 1
