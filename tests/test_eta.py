"""Tests for arrival-time profiles (repro.apps.eta)."""

import pytest

from repro.apps.eta import ArrivalProfile, arrival_profile
from repro.core.st_index import STIndex
from repro.network.generator import grid_city
from repro.spatial.geometry import Point
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))


class TestArrivalProfileMath:
    def make(self, per_day):
        profile = ArrivalProfile(0, 1, 3600, per_day_s=dict(per_day),
                                 total_days=5)
        profile.reachable_days = len(profile.per_day_s)
        return profile

    def test_reachability_fraction(self):
        profile = self.make({0: 300, 1: 600})
        assert profile.reachability == pytest.approx(2 / 5)

    def test_percentiles(self):
        profile = self.make({0: 300, 1: 600, 2: 900, 3: 1200})
        assert profile.percentile_s(0.5) == 600
        assert profile.percentile_s(1.0) == 1200
        assert profile.percentile_s(0.25) == 300

    def test_percentile_empty(self):
        profile = self.make({})
        assert profile.percentile_s(0.5) is None

    def test_percentile_validation(self):
        profile = self.make({0: 300})
        with pytest.raises(ValueError):
            profile.percentile_s(0.0)
        with pytest.raises(ValueError):
            profile.percentile_s(1.5)

    def test_rows(self):
        rows = dict(self.make({0: 300}).to_rows())
        assert "reachable days" in rows
        assert "1/5" in rows["reachable days"]


class TestArrivalProfileOnCraftedData:
    @pytest.fixture(scope="class")
    def world(self):
        """Days arrive at the target after 1, 2, 3 slots; day 3 never."""
        network = grid_city(rows=4, cols=4, spacing=600.0, primary_every=0,
                            seed=3)
        route = [0]
        while len(route) < 4:
            route.append(network.successors(route[-1])[0])
        db = TrajectoryDatabase(num_taxis=4, num_days=4)
        # Day d's trajectory reaches route[3] at T + (d+1)*300 - 10.
        for day in range(3):
            arrival = T + (day + 1) * 300 - 10
            db.add(MatchedTrajectory(day, day, day, [
                SegmentVisit(route[0], T + 5, 6.0),
                SegmentVisit(route[3], arrival, 6.0),
            ]))
        db.add(MatchedTrajectory(3, 3, 3, [
            SegmentVisit(route[0], T + 5, 6.0),
        ]))
        db.finalize()
        from repro.core.engine import ReachabilityEngine

        engine = ReachabilityEngine(network, db)
        engine.st_index(300)
        return engine, network, route

    def test_per_day_slots(self, world):
        engine, network, route = world
        profile = arrival_profile(
            engine,
            network.segment(route[0]).midpoint,
            network.segment(route[3]).midpoint,
            T,
            horizon_s=1800,
        )
        assert profile.per_day_s == {0: 300, 1: 600, 2: 900}
        assert profile.reachable_days == 3
        assert profile.total_days == 4
        assert profile.reachability == pytest.approx(3 / 4)

    def test_horizon_cuts_off(self, world):
        engine, network, route = world
        profile = arrival_profile(
            engine,
            network.segment(route[0]).midpoint,
            network.segment(route[3]).midpoint,
            T,
            horizon_s=600,
        )
        assert profile.per_day_s == {0: 300, 1: 600}

    def test_dead_origin(self, world):
        engine, network, route = world
        far = network.bounds()
        corner = Point(far.max_x, far.max_y)
        profile = arrival_profile(engine, corner, corner, day_time(3), 600)
        assert profile.reachable_days == 0
        assert profile.reachability == 0.0


class TestArrivalProfileOnDataset:
    def test_profile_consistent_with_reachability(self, engine, test_dataset):
        profile = arrival_profile(
            engine, Point(0, 0), Point(800, 600), day_time(11),
            horizon_s=1200,
        )
        assert 0 <= profile.reachability <= 1
        for seconds in profile.per_day_s.values():
            assert 0 < seconds <= 1200
            assert seconds % 300 == 0  # slot-rounded

    def test_nearby_target_faster_than_far(self, engine):
        near = arrival_profile(
            engine, Point(0, 0), Point(500, 0), day_time(11), 1800
        )
        far = arrival_profile(
            engine, Point(0, 0), Point(1800, 1500), day_time(11), 1800
        )
        near_median = near.percentile_s(0.5)
        far_median = far.percentile_s(0.5)
        if near_median is not None and far_median is not None:
            assert near_median <= far_median
