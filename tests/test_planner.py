"""Tests for the query planner and the executor registry."""

import pytest

from repro.core.executors import (
    ExecutionOutcome,
    _REGISTRY,
    execute_plan,
    executor_names,
    get_executor,
    has_executor,
    register_executor,
)
from repro.core.planner import (
    QueryPlan,
    plan_m_query,
    plan_query,
    plan_r_query,
    plan_s_query,
)
from repro.core.query import MQuery, QueryResult, SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)
S = SQuery(CENTER, T, 600, 0.2)
M = MQuery((CENTER, Point(1000.0, 0.0)), T, 1200, 0.2)


class TestPlanSelection:
    def test_sqmb_tbs_plan(self):
        plan = plan_s_query(S, "sqmb_tbs", delta_t_s=300)
        assert plan.kind == "s"
        assert plan.executor == "sqmb_tbs"
        assert plan.bounding_strategy == "sqmb"
        assert plan.uses_con_index
        assert plan.steps == 2  # L=600, Δt=300
        assert plan.start_slot == T // 300
        assert plan.num_locations == 1

    def test_es_plan_has_no_bounds(self):
        for algorithm in ("es", "es_pruned"):
            plan = plan_s_query(S, algorithm)
            assert plan.bounding_strategy is None
            assert not plan.uses_con_index
            assert plan.steps == 0

    def test_mqmb_plan(self):
        plan = plan_m_query(M, "mqmb_tbs", delta_t_s=300)
        assert plan.kind == "m"
        assert plan.bounding_strategy == "mqmb"
        assert plan.steps == 4
        assert plan.num_locations == 2

    def test_naive_m_plan_uses_sqmb(self):
        plan = plan_m_query(M, "sqmb_tbs_each")
        assert plan.bounding_strategy == "sqmb"

    def test_reverse_plan_uses_reverse_bounds(self):
        plan = plan_r_query(S, "sqmb_tbs")
        assert plan.kind == "r"
        assert plan.bounding_strategy == "reverse"
        reverse_es = plan_r_query(S, "es")
        assert reverse_es.bounding_strategy is None

    def test_short_query_takes_one_hop(self):
        plan = plan_s_query(SQuery(CENTER, T, 100, 0.2), "sqmb_tbs",
                            delta_t_s=300)
        assert plan.steps == 1

    def test_identical_queries_share_equal_plans(self):
        assert plan_s_query(S, "sqmb_tbs") == plan_s_query(S, "sqmb_tbs")
        # Probability does not enter the plan: same routing either way.
        other = SQuery(CENTER, T, 600, 0.8)
        assert plan_s_query(other, "sqmb_tbs") == plan_s_query(S, "sqmb_tbs")

    def test_describe_mentions_routing(self):
        text = plan_s_query(S, "sqmb_tbs", delta_t_s=300).describe()
        assert "sqmb_tbs" in text
        assert "sqmb" in text
        assert "cold" in text


class TestPlanErrors:
    def test_unknown_s_algorithm(self):
        with pytest.raises(ValueError, match="unknown s-query algorithm"):
            plan_s_query(S, "nope")

    def test_unknown_m_algorithm(self):
        with pytest.raises(ValueError, match="unknown m-query algorithm"):
            plan_m_query(M, "sqmb_tbs")  # registered for s, not m

    def test_unknown_r_algorithm(self):
        with pytest.raises(ValueError, match="unknown r-query algorithm"):
            plan_r_query(S, "mqmb_tbs")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            plan_query("x", S, "sqmb_tbs")

    def test_bad_delta_t(self):
        with pytest.raises(ValueError, match="granularity"):
            plan_s_query(S, "sqmb_tbs", delta_t_s=0)

    def test_error_lists_registered_names(self):
        with pytest.raises(ValueError, match="sqmb_tbs"):
            plan_s_query(S, "nope")

    def test_engine_facade_propagates(self, engine):
        with pytest.raises(ValueError, match="unknown s-query algorithm"):
            engine.s_query(S, algorithm="nope")
        with pytest.raises(ValueError, match="unknown m-query algorithm"):
            engine.m_query(M, algorithm="nope")
        with pytest.raises(ValueError, match="unknown r-query algorithm"):
            engine.r_query(S, algorithm="mqmb_tbs")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(executor_names("s")) >= {"sqmb_tbs", "es", "es_pruned"}
        assert set(executor_names("m")) >= {
            "mqmb_tbs", "sqmb_tbs_each", "es_each",
        }
        assert set(executor_names("r")) >= {"sqmb_tbs", "es"}

    def test_get_unregistered_raises(self):
        with pytest.raises(KeyError):
            get_executor("s", "nope")

    def test_register_round_trip(self, engine):
        """A third-party executor registers, plans, and executes."""

        def fake_executor(ctx, plan, query):
            return ExecutionOutcome(
                result=QueryResult(segments={1, 2, 3}),
            )

        register_executor("s", "custom_fake")(fake_executor)
        try:
            assert has_executor("s", "custom_fake")
            assert get_executor("s", "custom_fake") is fake_executor
            assert "custom_fake" in executor_names("s")
            plan = plan_s_query(S, "custom_fake")
            assert plan.bounding_strategy is None
            result = engine.s_query(S, algorithm="custom_fake")
            assert result.segments == {1, 2, 3}
            assert result.cost.probability_checks == 0
        finally:
            _REGISTRY.pop(("s", "custom_fake"))

    def test_duplicate_registration_rejected(self):
        def executor(ctx, plan, query):  # pragma: no cover - never runs
            return ExecutionOutcome()

        register_executor("s", "dupe_fake")(executor)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_executor("s", "dupe_fake")(executor)
        finally:
            _REGISTRY.pop(("s", "dupe_fake"))

    def test_register_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            register_executor("z", "whatever")

    def test_legacy_algorithm_tuples_read_from_registry(self):
        from repro.core import engine as engine_module

        assert "sqmb_tbs" in engine_module.S_QUERY_ALGORITHMS
        assert "mqmb_tbs" in engine_module.M_QUERY_ALGORITHMS
        assert "es" in engine_module.R_QUERY_ALGORITHMS
        with pytest.raises(AttributeError):
            engine_module.NO_SUCH_ATTRIBUTE

    def test_execute_plan_fills_cost(self, engine):
        plan = plan_s_query(S, "sqmb_tbs", delta_t_s=300)
        result = execute_plan(engine, plan, S)
        assert isinstance(plan, QueryPlan)
        assert result.cost.io.page_reads > 0
        assert result.cost.probability_checks > 0
