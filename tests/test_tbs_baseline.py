"""Unit tests for trace-back search and the ES baselines on crafted data.

The fixture builds a fully deterministic world where the Prob-reachable
region is known exactly, so TBS and ES can be checked against ground truth
instead of against each other.
"""

import pytest

from repro.core.baseline import (
    exhaustive_search,
    exhaustive_search_pruned,
    naive_m_query,
)
from repro.core.probability import ProbabilityEstimator
from repro.core.query import BoundingRegion
from repro.core.st_index import STIndex
from repro.core.tbs import trace_back_search
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))
NUM_DAYS = 4


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


@pytest.fixture(scope="module")
def route(network):
    """A simple 8-segment route that never revisits a road (canonically)."""
    from repro.spatial.geometry import Point

    start = network.nearest_segment_linear(Point(0.0, 0.0))

    def extend(path, seen_roads):
        if len(path) == 8:
            return path
        for successor in network.successors(path[-1]):
            road = network.segment(successor).canonical_id()
            if road in seen_roads:
                continue
            found = extend(path + [successor], seen_roads | {road})
            if found is not None:
                return found
        return None

    path = extend([start], {network.segment(start).canonical_id()})
    assert path is not None, "no simple 8-road route from the centre"
    return path


@pytest.fixture(scope="module")
def world(network, route):
    """Trajectories along ``route`` with decreasing daily support:

    route[i] is reached on ``NUM_DAYS - max(0, i - 3)`` days, so the
    probability staircase is 1.0, 1.0, 1.0, 1.0, 0.75, 0.5, 0.25, 0.0(+).
    """
    db = TrajectoryDatabase(num_taxis=NUM_DAYS, num_days=NUM_DAYS)
    for day in range(NUM_DAYS):
        depth = 8 - day  # day 0 goes deepest
        visits = [
            SegmentVisit(route[i], T + 5 + 30 * i, 6.0)
            for i in range(min(depth, 8))
        ]
        db.add(MatchedTrajectory(day, day % NUM_DAYS, day, visits))
    db.finalize()
    index = STIndex(network, 300)
    index.build(db)
    estimator = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
    return index, estimator


class TestStaircaseGroundTruth:
    def test_probability_staircase(self, world, route):
        _, est = world
        expected = [1.0, 1.0, 1.0, 1.0, 1.0, 0.75, 0.5, 0.25]
        for segment, prob in zip(route, expected):
            assert est.probability(segment) == pytest.approx(prob)


class TestExhaustiveSearch:
    def test_region_matches_threshold(self, world, route, network):
        _, est = world
        result = exhaustive_search(network, est, 0.6)
        expected_roads = {
            network.segment(route[i]).canonical_id() for i in range(6)
        }
        got_roads = {network.segment(s).canonical_id() for s in result.region}
        assert got_roads == expected_roads

    def test_examines_whole_network(self, world, route, network):
        _, est = world
        result = exhaustive_search(network, est, 0.6)
        assert result.examined == network.num_segments

    def test_pruned_examines_support_only(self, world, route, network):
        _, est = world
        full = exhaustive_search(network, est, 0.6)
        pruned = exhaustive_search_pruned(network, est, 0.6)
        assert pruned.region == full.region
        assert pruned.examined < full.examined

    def test_naive_m_query_unions(self, world, route, network):
        index, _ = world
        est_a = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        est_b = ProbabilityEstimator(index, route[3], T, 600, NUM_DAYS)
        merged = naive_m_query(network, {route[0]: est_a, route[3]: est_b}, 0.6)
        single_a = exhaustive_search(network, est_a, 0.6)
        single_b = exhaustive_search(network, est_b, 0.6)
        assert merged.region == single_a.region | single_b.region
        assert merged.failed.isdisjoint(merged.region)


def make_regions(network, route, max_depth, min_depth):
    """Bounding regions along the route: cover = route[:max_depth] (+twins)."""
    from repro.core.sqmb import close_under_twins, region_boundary

    max_cover = set(route[:max_depth])
    close_under_twins(network, max_cover)
    min_cover = set(route[:min_depth])
    close_under_twins(network, min_cover)
    return (
        BoundingRegion(
            cover=max_cover,
            boundary={route[max_depth - 1]},
            seed_of={s: route[0] for s in max_cover},
        ),
        BoundingRegion(cover=min_cover, boundary={route[min_depth - 1]},
                       seed_of={s: route[0] for s in min_cover}),
    )


class TestTraceBackSearch:
    def test_finds_threshold_boundary(self, world, route, network):
        _, est = world
        max_region, min_region = make_regions(network, route, 8, 2)
        result = trace_back_search(
            network, {route[0]: est}, 0.6, max_region, min_region
        )
        got_roads = {network.segment(s).canonical_id() for s in result.region}
        expected_roads = {
            network.segment(route[i]).canonical_id() for i in range(6)
        }
        assert got_roads == expected_roads

    def test_examined_less_than_cover(self, world, route, network):
        _, est = world
        max_region, min_region = make_regions(network, route, 8, 2)
        result = trace_back_search(
            network, {route[0]: est}, 0.6, max_region, min_region
        )
        assert result.examined <= len(max_region.cover)

    def test_passed_and_failed_disjoint(self, world, route, network):
        _, est = world
        max_region, min_region = make_regions(network, route, 8, 2)
        result = trace_back_search(
            network, {route[0]: est}, 0.6, max_region, min_region
        )
        assert result.passed.isdisjoint(result.failed)

    def test_min_cover_always_included(self, world, route, network):
        _, est = world
        max_region, min_region = make_regions(network, route, 8, 3)
        result = trace_back_search(
            network, {route[0]: est}, 1.0, max_region, min_region
        )
        assert min_region.cover <= result.region

    def test_prob_one_region_is_certain_prefix(self, world, route, network):
        _, est = world
        max_region, min_region = make_regions(network, route, 8, 2)
        result = trace_back_search(
            network, {route[0]: est}, 1.0, max_region, min_region
        )
        got_roads = {network.segment(s).canonical_id() for s in result.region}
        expected_roads = {
            network.segment(route[i]).canonical_id() for i in range(5)
        }
        assert got_roads == expected_roads

    def test_visited_once(self, world, route, network):
        """Each segment is examined at most once (the Fig 3.5 r* rule)."""
        index, _ = world
        fresh = ProbabilityEstimator(index, route[0], T, 600, NUM_DAYS)
        max_region, min_region = make_regions(network, route, 8, 2)
        trace_back_search(
            network, {route[0]: fresh}, 0.6, max_region, min_region
        )
        # checks counts cache misses; visiting a segment twice would not
        # re-check, but the number of checks is bounded by the cover.
        assert fresh.checks <= len(max_region.cover)
