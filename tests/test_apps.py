"""Tests for the application layer (recommendation, coverage, isochrones)."""

import pytest

from repro.apps.coverage import analyze_coverage
from repro.apps.isochrone import isochrones
from repro.apps.recommendation import POI, recommend_pois
from repro.core.query import SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


@pytest.fixture(scope="module")
def pois(test_dataset):
    """POIs scattered over the network: some central, some peripheral."""
    bounds = test_dataset.network.bounds()
    return [
        POI("noodles", Point(200.0, 100.0), "restaurant"),
        POI("cafe", Point(-300.0, 250.0), "cafe"),
        POI("mall", Point(700.0, -500.0), "shopping"),
        POI("far-depot", Point(bounds.max_x, bounds.max_y), "logistics"),
    ]


class TestRecommendation:
    def test_empty_pois(self, engine):
        assert recommend_pois(engine, CENTER, T, 600, []) == []

    def test_reachable_pois_only(self, engine, test_dataset, pois):
        ranked = recommend_pois(engine, CENTER, T, 900, pois, prob=0.2)
        names = [r.poi.name for r in ranked]
        # Central POIs should make it; none may be duplicated.
        assert len(names) == len(set(names))
        region = engine.s_query(SQuery(CENTER, T, 900, 0.2)).segments
        roads = {
            test_dataset.network.segment(s).canonical_id() for s in region
        }
        for entry in ranked:
            seg = test_dataset.network.segment(entry.segment_id)
            assert seg.canonical_id() in roads

    def test_ranking_order(self, engine, pois):
        ranked = recommend_pois(engine, CENTER, T, 900, pois, prob=0.2)
        keys = [
            (
                -(r.probability if r.probability is not None else 1.0),
                r.distance_m,
            )
            for r in ranked
        ]
        assert keys == sorted(keys)

    def test_top_k(self, engine, pois):
        full = recommend_pois(engine, CENTER, T, 900, pois, prob=0.2)
        if len(full) >= 2:
            top = recommend_pois(engine, CENTER, T, 900, pois, prob=0.2, top_k=1)
            assert top == full[:1]

    def test_distance_field(self, engine, pois):
        for entry in recommend_pois(engine, CENTER, T, 900, pois, prob=0.2):
            assert entry.distance_m == pytest.approx(
                CENTER.distance_to(entry.poi.location)
            )


class TestCoverage:
    BRANCHES = [CENTER, Point(1200.0, 900.0)]

    def test_requires_branches(self, engine):
        with pytest.raises(ValueError):
            analyze_coverage(engine, [], T, 600)

    def test_report_structure(self, engine):
        report = analyze_coverage(engine, self.BRANCHES, T, 600, prob=0.2)
        assert len(report.branches) == 2
        assert 0.0 <= report.coverage_fraction <= 1.0
        assert report.road_km >= 0

    def test_union_contains_exclusive(self, engine):
        report = analyze_coverage(engine, self.BRANCHES, T, 600, prob=0.2)
        for branch in report.branches:
            assert branch.exclusive_segments <= branch.own_segments

    def test_marginal_km_bounded_by_total(self, engine):
        report = analyze_coverage(engine, self.BRANCHES, T, 600, prob=0.2)
        for branch in report.branches:
            assert branch.marginal_road_km <= report.road_km + 1e-9

    def test_single_branch_owns_everything(self, engine):
        report = analyze_coverage(engine, [CENTER], T, 600, prob=0.2)
        branch = report.branches[0]
        assert branch.exclusive_segments == branch.own_segments


class TestIsochrones:
    def test_empty_durations(self, engine):
        assert isochrones(engine, CENTER, T, []) == []

    def test_bands_are_nested(self, engine):
        bands = isochrones(engine, CENTER, T, [300, 600, 900], prob=0.2)
        assert [b.duration_s for b in bands] == [300, 600, 900]
        for small, large in zip(bands, bands[1:]):
            assert small.segments <= large.segments
            assert small.road_km <= large.road_km + 1e-9

    def test_band_matches_single_query_roughly(self, engine, test_dataset):
        bands = isochrones(engine, CENTER, T, [600], prob=0.2)
        single = engine.s_query(SQuery(CENTER, T, 600, 0.2), algorithm="es")
        band_roads = {
            test_dataset.network.segment(s).canonical_id()
            for s in bands[0].segments
        }
        single_roads = {
            test_dataset.network.segment(s).canonical_id()
            for s in single.segments
        }
        union = band_roads | single_roads
        if union:
            overlap = len(band_roads & single_roads) / len(union)
            assert overlap >= 0.7

    def test_unsorted_input_sorted_output(self, engine):
        bands = isochrones(engine, CENTER, T, [900, 300], prob=0.2)
        assert [b.duration_s for b in bands] == [300, 900]

    def test_dead_target_empty_bands(self, engine, test_dataset):
        bounds = test_dataset.network.bounds()
        corner = Point(bounds.max_x, bounds.max_y)
        bands = isochrones(engine, corner, day_time(3, 1), [300], prob=1.0)
        assert len(bands) == 1
