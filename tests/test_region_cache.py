"""Tests for the service-lifetime RegionCache and its invalidation.

Covers the cache mechanics (LRU, in-flight dedup, thread safety) and the
end-to-end contract: appending trajectory data through the service drops
cached bounding regions and Con-Index entries, so post-append queries see
the new speed models instead of stale bounds.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.core.region_cache import RegionCache
from repro.core.service import QueryService
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))


class TestRegionCache:
    def test_compute_once_then_hit(self):
        cache = RegionCache(capacity=4)
        calls = []
        value, reused = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert (value, reused) == ("v", False)
        value, reused = cache.get_or_compute("k", lambda: calls.append(1) or "v2")
        assert (value, reused) == ("v", True)
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = RegionCache(capacity=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.get_or_compute("a", lambda: 99)[1] is True
        assert cache.get_or_compute("b", lambda: 42) == (42, False)

    def test_invalidate_clears(self):
        cache = RegionCache()
        cache.get_or_compute("a", lambda: 1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get_or_compute("a", lambda: 2) == (2, False)
        assert cache.stats()["invalidations"] == 1

    def test_failed_compute_does_not_poison(self):
        cache = RegionCache()
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", self._boom)
        assert cache.get_or_compute("k", lambda: "ok") == ("ok", False)

    @staticmethod
    def _boom():
        raise RuntimeError("expansion failed")

    def test_invalidate_fences_inflight_compute(self):
        """A value computed from pre-invalidation data must not be
        published into the cache after invalidate() ran mid-compute."""
        cache = RegionCache()
        started = threading.Event()
        release = threading.Event()

        def slow_compute():
            started.set()
            release.wait(5.0)
            return "stale"

        results = []
        thread = threading.Thread(
            target=lambda: results.append(cache.get_or_compute("k", slow_compute))
        )
        thread.start()
        started.wait(5.0)
        cache.invalidate()
        release.set()
        thread.join(5.0)
        # The requester (whose query began pre-invalidation) gets its value,
        # but the cache stays empty for later queries.
        assert results == [("stale", False)]
        assert len(cache) == 0
        assert cache.get_or_compute("k", lambda: "fresh") == ("fresh", False)

    def test_concurrent_requests_compute_once(self):
        cache = RegionCache()
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(5.0)
            return "value"

        results = []

        def first():
            results.append(cache.get_or_compute("k", slow_compute))

        def second():
            started.wait(5.0)
            # Arrives while the first thread is still computing.
            results.append(cache.get_or_compute("k", lambda: "other"))

        t1 = threading.Thread(target=first)
        t2 = threading.Thread(target=second)
        t1.start()
        t2.start()
        started.wait(5.0)
        release.set()
        t1.join(5.0)
        t2.join(5.0)
        assert len(calls) == 1
        assert sorted(r for _, r in results) == [False, True]
        assert all(v == "value" for v, _ in results)


class TestDecodedRecordCache:
    def test_threaded_reads_with_tiny_cache(self):
        """The ST-Index decoded-record LRU is shared by batch worker
        threads; a capacity-1 cache under concurrent reads must neither
        crash (hit / evict / move_to_end race) nor corrupt results."""
        from repro.core.st_index import STIndex
        from repro.network.generator import grid_city

        network = grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)
        db = TrajectoryDatabase(num_taxis=4, num_days=2)
        segment_ids = sorted(network.segment_ids())[:8]
        for i, segment_id in enumerate(segment_ids):
            db.add(
                MatchedTrajectory(
                    i, i % 4, i % 2,
                    [SegmentVisit(segment_id, T + i, 5.0)],
                )
            )
        db.finalize()
        index = STIndex(network, 300, record_cache_size=1)
        index.build(db)
        slot = index.slot_of(T)
        expected = {
            segment_id: index.time_entries(segment_id, slot)
            for segment_id in segment_ids
        }
        errors = []

        def hammer():
            try:
                for _ in range(300):
                    for segment_id in segment_ids:
                        assert (
                            index.time_entries(segment_id, slot)
                            == expected[segment_id]
                        )
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors

    def test_returned_mapping_is_caller_mutable(self):
        """time_entries hands back fresh dict+lists: mutating the return
        value must not corrupt the memoized decoded record."""
        from repro.core.st_index import STIndex
        from repro.network.generator import grid_city

        network = grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)
        db = TrajectoryDatabase(num_taxis=2, num_days=1)
        db.add(MatchedTrajectory(0, 0, 0, [SegmentVisit(0, T, 5.0)]))
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        slot = index.slot_of(T)
        first = index.time_entries(0, slot)
        first[0].append((999, 999))
        first[123] = []
        assert index.time_entries(0, slot) == {0: [(0, int(T))]}


def _make_day(route, date, trajectory_id, speed):
    return MatchedTrajectory(
        trajectory_id=trajectory_id, taxi_id=trajectory_id % 4, date=date,
        visits=[
            SegmentVisit(route[i], T + 10 + 30 * i, speed)
            for i in range(len(route))
        ],
    )


class TestAppendInvalidation:
    @pytest.fixture()
    def setup(self):
        network = grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)
        route = [0]
        while len(route) < 6:
            route.append(network.successors(route[-1])[0])
        db = TrajectoryDatabase(num_taxis=4, num_days=2)
        # Day 0: a slow crawl (1.2 m/s) — the Far bound barely moves.
        db.add(_make_day(route, 0, 0, 1.2))
        db.finalize()
        engine = ReachabilityEngine(network, db)
        engine.st_index(300)
        service = QueryService(engine)
        location = network.segment(route[0]).midpoint
        query = SQuery(location, T, 600.0, 0.4)
        return service, route, query

    def test_append_then_query_sees_new_speeds(self, setup):
        service, route, query = setup
        before = service.run_batch([query])
        assert before.regions_computed > 0
        small_cover = before.results[0].max_region.cover
        # New fast data arrives (12 m/s sweeps the whole corridor per slot).
        touched = service.append_trajectories([_make_day(route, 1, 1, 12.0)])
        assert touched > 0
        assert service.region_cache.stats()["invalidations"] == 1
        after = service.run_batch([query])
        # The cached region was NOT reused: the bounds were recomputed
        # from the post-append speed bounds and grew.
        assert after.regions_computed > 0
        large_cover = after.results[0].max_region.cover
        assert small_cover < large_cover
        assert set(route) <= large_cover

    def test_stale_cache_without_invalidation_would_lie(self, setup):
        """Control: bypassing the service's append (mutating the indexes
        directly) leaves the stale region in the cache — which is exactly
        why QueryService.append_trajectories must invalidate."""
        service, route, query = setup
        before = service.run_batch([query])
        small_cover = before.results[0].max_region.cover
        engine = service.engine
        engine.database.add(_make_day(route, 1, 1, 12.0))
        # No service-level append, no invalidation: the next batch reuses
        # the pre-append region.
        stale = service.run_batch([query])
        assert stale.regions_reused > 0
        assert stale.results[0].max_region.cover == small_cover

    def test_engine_level_append_invalidates_every_service(self, setup):
        """Data changes made directly on the engine (not through one
        particular service) must still drop every service's region cache
        — the caches registered themselves as engine data-change hooks."""
        service, route, query = setup
        other = QueryService(service.engine)
        service.run_batch([query])
        other.run_batch([query])
        service.engine.append_trajectories([_make_day(route, 1, 1, 12.0)])
        assert service.region_cache.stats()["invalidations"] == 1
        assert other.region_cache.stats()["invalidations"] == 1
        after = service.run_batch([query])
        assert after.regions_computed > 0
        assert after.regions_reused == 0

    def test_rebuild_indexes_invalidates(self, setup):
        service, route, query = setup
        first = service.run_batch([query])
        assert first.regions_computed > 0
        service.rebuild_indexes()
        assert service.region_cache.stats()["invalidations"] == 1
        second = service.run_batch([query])
        assert second.regions_computed > 0
        assert second.regions_reused == 0
        assert second.results[0].segments == first.results[0].segments
