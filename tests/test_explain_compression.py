"""Tests for query explanation and Con-Index compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.con_index import (
    ConnectionIndex,
    FrontierEntry,
    decode_entry_compressed,
    encode_entry,
    encode_entry_compressed,
)
from repro.core.explain import explain_m_query, explain_s_query
from repro.core.query import MQuery, SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


class TestExplain:
    def test_s_query_stages(self, engine):
        explanation = explain_s_query(engine, SQuery(CENTER, T, 600, 0.2))
        names = [stage.name for stage in explanation.stages]
        assert names == [
            "start-segment lookup",
            "start time-list read",
            "max bounding region",
            "min bounding region",
            "trace-back search",
        ]
        assert explanation.max_cover >= explanation.min_cover
        assert explanation.region_segments >= 0
        assert explanation.examined >= 0

    def test_explanation_matches_query(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        explanation = explain_s_query(engine, query)
        result = engine.s_query(query)
        assert explanation.region_segments == len(result.segments)
        assert explanation.max_cover == len(result.max_region.cover)

    def test_text_rendering(self, engine):
        explanation = explain_s_query(engine, SQuery(CENTER, T, 600, 0.2))
        text = explanation.to_text()
        assert "QUERY PLAN" in text
        assert "trace-back search" in text
        assert "region=" in text

    def test_dead_query_short_plan(self, engine, test_dataset):
        bounds = test_dataset.network.bounds()
        corner = Point(bounds.max_x, bounds.max_y)
        explanation = explain_s_query(
            engine, SQuery(corner, day_time(3, 1), 300, 1.0)
        )
        # A query with no start trajectories stops after two stages.
        assert len(explanation.stages) <= 2 or explanation.region_segments >= 0

    def test_m_query_stages(self, engine):
        query = MQuery((CENTER, Point(1000.0, 600.0)), T, 600, 0.2)
        explanation = explain_m_query(engine, query)
        assert explanation.stages[0].name == "start-segment lookup"
        assert explanation.stages[-1].name == "trace-back search"
        result = engine.m_query(query)
        assert explanation.region_segments == len(result.segments)


class TestCompressedCodec:
    def test_roundtrip(self):
        entry = FrontierEntry(
            frontier=(5, 1, 99), cover=frozenset({1, 5, 99, 100, 101})
        )
        decoded = decode_entry_compressed(encode_entry_compressed(entry))
        assert decoded.frontier == (1, 5, 99)
        assert decoded.cover == entry.cover

    def test_empty(self):
        entry = FrontierEntry(frontier=(), cover=frozenset())
        assert decode_entry_compressed(encode_entry_compressed(entry)) == entry

    def test_clustered_ids_compress_well(self):
        entry = FrontierEntry(
            frontier=tuple(range(880, 890)),
            cover=frozenset(range(850, 950)),
        )
        flat = encode_entry(entry)
        compressed = encode_entry_compressed(entry)
        assert len(compressed) < len(flat) / 2

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 100_000), max_size=200))
    def test_roundtrip_property(self, ids):
        frontier = tuple(sorted(ids))[:10]
        entry = FrontierEntry(frontier=frontier, cover=frozenset(ids))
        decoded = decode_entry_compressed(encode_entry_compressed(entry))
        assert decoded.cover == entry.cover
        assert decoded.frontier == tuple(sorted(frontier))


class TestCompressedIndex:
    def test_same_entries_both_codecs(self, test_dataset):
        flat = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300
        )
        packed = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300, compressed=True
        )
        slot = flat.slot_of(T)
        for sid in list(test_dataset.network.segment_ids())[:8]:
            assert flat.far(sid, slot) == packed.far(sid, slot)
            assert flat.near(sid, slot) == packed.near(sid, slot)

    def test_compressed_stores_fewer_bytes(self, test_dataset):
        flat = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300
        )
        packed = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300, compressed=True
        )
        slot = flat.slot_of(T)
        segments = list(test_dataset.network.segment_ids())[:30]
        flat.precompute(segment_ids=segments, slots=[slot], kinds=("far",))
        packed.precompute(segment_ids=segments, slots=[slot], kinds=("far",))
        assert packed.bytes_stored < flat.bytes_stored

    def test_query_results_identical(self, test_dataset):
        """The engine's answers are codec-independent."""
        from repro.core.engine import ReachabilityEngine
        from repro.core.sqmb import sqmb_bounding_region

        engine = ReachabilityEngine(
            test_dataset.network, test_dataset.database
        )
        st_index = engine.st_index(300)
        r0 = st_index.find_start_segment(CENTER)
        flat = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300
        )
        packed = ConnectionIndex(
            test_dataset.network, test_dataset.database, 300, compressed=True
        )
        a = sqmb_bounding_region(flat, r0, float(T), 900, "far")
        b = sqmb_bounding_region(packed, r0, float(T), 900, "far")
        assert a.cover == b.cover
        assert a.boundary == b.boundary
