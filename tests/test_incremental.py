"""Tests for incremental index maintenance (appending new days)."""

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.probability import ProbabilityEstimator
from repro.core.st_index import STIndex
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

T = float(day_time(11))


@pytest.fixture()
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


def make_day(route, day, traj_id):
    return MatchedTrajectory(
        trajectory_id=traj_id, taxi_id=traj_id % 5, date=day,
        visits=[SegmentVisit(route[i], T + 10 + 30 * i, 6.0)
                for i in range(len(route))],
    )


@pytest.fixture()
def route(network):
    """Simple deterministic route via successors from segment 0."""
    path = [0]
    while len(path) < 4:
        path.append(network.successors(path[-1])[0])
    return path


class TestAppendTrajectories:
    def test_append_before_build_rejected(self, network, route):
        index = STIndex(network, 300)
        with pytest.raises(RuntimeError):
            index.append_trajectories([make_day(route, 0, 0)])

    def test_appended_day_visible(self, network, route):
        db = TrajectoryDatabase(num_taxis=5, num_days=2)
        db.add(make_day(route, 0, 0))
        db.add(make_day(route, 1, 1))
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        before = index.time_list(route[0], index.slot_of(T))
        assert set(before) == {0, 1}
        touched = index.append_trajectories([make_day(route, 2, 2)])
        assert touched == len(set(route))  # one entry per visited segment
        after = index.time_list(route[0], index.slot_of(T))
        assert set(after) == {0, 1, 2}
        assert after[2] == {2}
        # Existing days unchanged.
        assert after[0] == before[0]

    def test_merge_with_existing_day(self, network, route):
        db = TrajectoryDatabase(num_taxis=5, num_days=1)
        db.add(make_day(route, 0, 0))
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        index.append_trajectories([make_day(route, 0, 1)])
        merged = index.time_list(route[0], index.slot_of(T))
        assert merged[0] == {0, 1}

    def test_append_to_unseen_entry(self, network, route):
        db = TrajectoryDatabase(num_taxis=5, num_days=1)
        db.add(make_day(route[:2], 0, 0))
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        # route[3] was never indexed; appending creates its entry.
        assert not index.has_entry(route[3], index.slot_of(T))
        index.append_trajectories([make_day(route, 0, 1)])
        assert index.has_entry(route[3], index.slot_of(T))

    def test_probabilities_reflect_new_days(self, network, route):
        db = TrajectoryDatabase(num_taxis=5, num_days=2)
        db.add(make_day(route, 0, 0))
        db.add(make_day(route, 1, 1))
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        est = ProbabilityEstimator(index, route[0], T, 600, db.num_days)
        assert est.probability(route[2]) == pytest.approx(1.0)
        # Two new days arrive: one drives the route, one does not.
        db.extend_days(4)
        new = [make_day(route, 2, 2)]
        index.append_trajectories(new)
        est = ProbabilityEstimator(index, route[0], T, 600, db.num_days)
        # 3 of 4 days support the route now.
        assert est.probability(route[2]) == pytest.approx(3 / 4)


class TestExtendDays:
    def test_shrink_rejected(self):
        db = TrajectoryDatabase(num_taxis=2, num_days=5)
        with pytest.raises(ValueError):
            db.extend_days(3)

    def test_extend_allows_new_dates(self, network, route):
        db = TrajectoryDatabase(num_taxis=5, num_days=1)
        with pytest.raises(ValueError):
            db.add(make_day(route, 1, 0))
        db.extend_days(2)
        db.add(make_day(route, 1, 0))
        assert db.stats().num_days == 2


class TestEndToEndIncremental:
    def test_engine_queries_after_append(self, network, route):
        """A query engine stays correct as new days stream in."""
        from repro.core.query import SQuery
        from repro.spatial.geometry import Point

        db = TrajectoryDatabase(num_taxis=5, num_days=2)
        for day in range(2):
            db.add(make_day(route, day, day))
        db.finalize()
        engine = ReachabilityEngine(network, db)
        st = engine.st_index(300)
        location = network.segment(route[0]).midpoint
        query = SQuery(location, T, 600, 0.9)
        first = engine.s_query(query, algorithm="es")
        assert route[2] in first.segments or (
            network.segment(route[2]).twin_id in first.segments
        )
        # A new day with no driving arrives: probabilities drop below 0.9.
        db.extend_days(3)
        st.append_trajectories([])  # no trajectories that day
        second = engine.s_query(query, algorithm="es")
        assert second.probabilities[route[0]] == pytest.approx(2 / 3)
        assert not second.segments  # 2/3 < 0.9
