"""Deterministic crash and corruption matrices for the durable tier.

Every test follows the same oracle protocol: build a store, capture its
durable state, inject exactly one deterministic failure (counter-keyed,
no sleeps, no randomness), then reopen and demand one of the two
permitted outcomes — bit-identical pre-crash state, or a typed error
naming the damage.  Silent wrong answers and raw numpy/struct noise are
both failures.

Run with ``pytest -m durability`` (also part of the default run).
"""

from __future__ import annotations

import json

import pytest

from repro.io.persist import open_store, save_store
from repro.storage.backends import (
    CorruptSnapshotError,
    DiskFormatError,
    FileBackedDisk,
    TornWriteError,
)
from repro.storage.crashsim import (
    CRASH_BEFORE_FSYNC,
    CRASH_MID_RENAME,
    TORN_PAGE_WRITE,
    TRUNCATED_JOURNAL_RECORD,
    CrashPlan,
    CrashSpec,
    SimulatedCrash,
    corrupt_journal_record,
    corrupt_page,
    corrupt_sidecar,
    corrupt_superblock,
)

pytestmark = pytest.mark.durability

PAGE = 128


def build_store(path, pages=4):
    """A store with `pages` committed pages and two journal records."""
    disk = FileBackedDisk(path, page_size=PAGE)
    first = disk.allocate(pages)
    for i in range(pages):
        disk.write_page(first + i, bytes([i + 1]) * (PAGE - i))
    disk.commit(meta=b"m1")
    disk.write_page(first, b"\xaa" * PAGE)
    disk.commit(meta=b"m2")
    disk.close()
    return path


def durable_state(path):
    """Everything the store promises to preserve, for oracle equality."""
    disk = FileBackedDisk.open(path)
    try:
        buffer, used = disk.export_state()  # faults + checksum-verifies all
        return {
            "buffer": buffer,
            "used": used,
            "generation": disk.generation,
            "metas": disk.journal_metas,
        }
    finally:
        disk.close()


class TestJournalCrashMatrix:
    """One injected failure during a journal append; reopen recovers the
    exact pre-crash state."""

    @pytest.mark.parametrize(
        "kind", [CRASH_BEFORE_FSYNC, TORN_PAGE_WRITE, TRUNCATED_JOURNAL_RECORD]
    )
    def test_crash_during_append_recovers_oracle(self, tmp_path, kind):
        path = build_store(tmp_path / "store")
        oracle = durable_state(path)

        plan = CrashPlan.of(CrashSpec(kind, at=1))
        disk = FileBackedDisk.open(path, crash_plan=plan)
        disk.write_page(1, b"\xbb" * PAGE)
        with pytest.raises(SimulatedCrash):
            disk.commit(meta=b"doomed")

        recovered = FileBackedDisk.open(path)
        # Torn/truncated records leave a damaged tail the replay trims;
        # a crash before fsync leaves no durable trace at all.
        assert recovered.recovered_tail == (kind != CRASH_BEFORE_FSYNC)
        recovered.close()
        assert durable_state(path) == oracle

    @pytest.mark.parametrize(
        "kind", [CRASH_BEFORE_FSYNC, TORN_PAGE_WRITE, TRUNCATED_JOURNAL_RECORD]
    )
    def test_crash_is_deterministic(self, tmp_path, kind):
        states = []
        for attempt in range(2):
            path = build_store(tmp_path / f"store{attempt}")
            plan = CrashPlan.of(CrashSpec(kind, at=1))
            disk = FileBackedDisk.open(path, crash_plan=plan)
            disk.write_page(0, b"\xcc" * PAGE)
            with pytest.raises(SimulatedCrash):
                disk.commit(meta=b"doomed")
            states.append(durable_state(path))
        assert states[0] == states[1]

    def test_append_after_recovery_works(self, tmp_path):
        path = build_store(tmp_path / "store")
        plan = CrashPlan.of(CrashSpec(TORN_PAGE_WRITE, at=1))
        disk = FileBackedDisk.open(path, crash_plan=plan)
        disk.write_page(2, b"\xdd" * PAGE)
        with pytest.raises(SimulatedCrash):
            disk.commit(meta=b"doomed")

        survivor = FileBackedDisk.open(path)
        assert survivor.recovered_tail
        survivor.write_page(2, b"\xee" * PAGE)
        survivor.commit(meta=b"m3")
        survivor.close()

        final = FileBackedDisk.open(path)
        assert final.journal_metas == (b"m1", b"m2", b"m3")
        assert final.read_page(2) == b"\xee" * PAGE
        assert not final.recovered_tail

    def test_second_commit_crash_counter_keyed(self, tmp_path):
        """`at=2` survives the first commit and kills the second."""
        path = tmp_path / "store"
        plan = CrashPlan.of(CrashSpec(TRUNCATED_JOURNAL_RECORD, at=2))
        disk = FileBackedDisk(path, page_size=PAGE, crash_plan=plan)
        disk.allocate(1)
        disk.write_page(0, b"\x01" * PAGE)
        disk.commit(meta=b"first")  # survives
        disk.write_page(0, b"\x02" * PAGE)
        with pytest.raises(SimulatedCrash):
            disk.commit(meta=b"second")
        recovered = FileBackedDisk.open(path)
        assert recovered.journal_metas == (b"first",)
        assert recovered.read_page(0) == b"\x01" * PAGE


class TestCheckpointCrashMatrix:
    """A crash anywhere inside checkpoint leaves the old generation
    authoritative and untouched."""

    @pytest.mark.parametrize("kind", [CRASH_BEFORE_FSYNC, CRASH_MID_RENAME])
    @pytest.mark.parametrize("at", [1, 2, 3])
    def test_crash_during_checkpoint_keeps_old_generation(
        self, tmp_path, kind, at
    ):
        path = build_store(tmp_path / "store")
        oracle = durable_state(path)

        plan = CrashPlan.of(CrashSpec(kind, at=at))
        disk = FileBackedDisk.open(path, crash_plan=plan)
        with pytest.raises(SimulatedCrash):
            disk.checkpoint()

        state = durable_state(path)
        assert state == oracle
        assert state["generation"] == oracle["generation"]

    def test_checkpoint_completes_without_plan(self, tmp_path):
        path = build_store(tmp_path / "store")
        before = durable_state(path)
        disk = FileBackedDisk.open(path)
        old_generation = disk.generation
        disk.checkpoint()
        disk.close()
        after = durable_state(path)
        assert after["generation"] == old_generation + 1
        assert after["buffer"] == before["buffer"]
        assert after["used"] == before["used"]
        assert after["metas"] == ()  # journal folded into the snapshot


class TestCorruptionMatrix:
    """Every flipped bit is either detected with a typed error naming
    the damage, or provably harmless — never a silent wrong answer."""

    def test_page_bit_flip_names_page(self, tmp_path):
        path = build_store(tmp_path / "store")
        FileBackedDisk.open(path).checkpoint()  # pages into the snapshot
        corrupt_page(path, page_id=2, page_size=PAGE)
        disk = FileBackedDisk.open(path)  # lazy: open itself succeeds
        assert disk.read_page(1)  # undamaged pages still serve
        with pytest.raises(CorruptSnapshotError) as exc:
            disk.read_page(2)
        assert exc.value.page_id == 2
        assert "page 2" in str(exc.value)

    def test_verify_sweeps_all_pages(self, tmp_path):
        path = build_store(tmp_path / "store")
        FileBackedDisk.open(path).checkpoint()
        corrupt_page(path, page_id=3, page_size=PAGE)
        disk = FileBackedDisk.open(path)
        with pytest.raises(CorruptSnapshotError):
            disk.verify()

    def test_sidecar_bit_flip_detected_at_open(self, tmp_path):
        path = build_store(tmp_path / "store")
        FileBackedDisk.open(path).checkpoint()  # sidecar gains entries
        corrupt_sidecar(path, page_id=0)
        with pytest.raises(CorruptSnapshotError):
            FileBackedDisk.open(path)

    def test_superblock_bit_flip_detected_at_open(self, tmp_path):
        path = build_store(tmp_path / "store")
        corrupt_superblock(path)
        with pytest.raises(CorruptSnapshotError):
            FileBackedDisk.open(path)

    def test_interior_journal_damage_is_typed(self, tmp_path):
        """Damage to a non-final record cannot be a crash signature, so
        it must surface as TornWriteError, not silent truncation."""
        path = build_store(tmp_path / "store")  # two journal records
        corrupt_journal_record(path, record_index=0)
        with pytest.raises(TornWriteError) as exc:
            FileBackedDisk.open(path)
        assert exc.value.record_index == 0

    def test_final_journal_damage_is_recovered(self, tmp_path):
        path = build_store(tmp_path / "store")
        corrupt_journal_record(path, record_index=1)  # the final record
        disk = FileBackedDisk.open(path)
        assert disk.recovered_tail
        assert disk.journal_metas == (b"m1",)

    def test_bad_magic_rejected(self, tmp_path):
        path = build_store(tmp_path / "store")
        superblock = path / "superblock.json"
        payload = json.loads(superblock.read_text())
        payload["magic"] = "not-a-repro-disk"
        superblock.write_text(json.dumps(payload))
        with pytest.raises(DiskFormatError, match="magic"):
            FileBackedDisk.open(path)

    def test_future_version_rejected(self, tmp_path):
        path = build_store(tmp_path / "store")
        superblock = path / "superblock.json"
        payload = json.loads(superblock.read_text())
        payload["format_version"] = 99
        superblock.write_text(json.dumps(payload))
        with pytest.raises(DiskFormatError, match="99"):
            FileBackedDisk.open(path)

    def test_garbage_superblock_rejected(self, tmp_path):
        path = build_store(tmp_path / "store")
        (path / "superblock.json").write_text("not json {")
        with pytest.raises(DiskFormatError):
            FileBackedDisk.open(path)

    def test_missing_store_rejected(self, tmp_path):
        with pytest.raises(DiskFormatError, match="missing superblock"):
            FileBackedDisk.open(tmp_path / "nothing-here")


class TestStoreLevelRecovery:
    """The same guarantees through the save_store/open_store bundle."""

    @pytest.fixture()
    def store(self, test_dataset, tmp_path):
        from repro.core.engine import ReachabilityEngine

        engine = ReachabilityEngine(
            test_dataset.network, test_dataset.database
        )
        directory = tmp_path / "bundle"
        save_store(engine, directory, 300)
        return directory

    def test_crash_during_store_append_recovers(self, store, test_dataset):
        from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time

        route = [0]
        while len(route) < 3:
            route.append(test_dataset.network.successors(route[-1])[0])
        T = float(day_time(11))
        trajectory = MatchedTrajectory(
            trajectory_id=99, taxi_id=0, date=12,
            visits=[SegmentVisit(route[i], T + 30 * i, 6.0)
                    for i in range(len(route))],
        )

        engine = open_store(
            store, crash_plan=CrashPlan.of(CrashSpec(TORN_PAGE_WRITE, at=1))
        )
        index = engine.st_index(300)
        slot = index.slot_of(T)
        before = index.time_list(route[0], slot)
        with pytest.raises(SimulatedCrash):
            engine.append_trajectories([trajectory], update_database=False)

        recovered = open_store(store)
        assert recovered.st_index(300).time_list(route[0], slot) == before

    def test_corrupted_store_page_is_typed_not_wrong(self, store):
        disk = open_store(store).disk
        page_size = disk.page_size
        corrupt_page(store / "disk", page_id=0, page_size=page_size)
        engine = open_store(store)
        with pytest.raises(CorruptSnapshotError):
            engine.disk.verify()

    def test_corrupted_store_superblock_fails_open(self, store):
        corrupt_superblock(store / "disk")
        with pytest.raises(CorruptSnapshotError):
            open_store(store)
