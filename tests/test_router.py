"""Tests for the adaptive router: the fixture table and routing exactness.

Two layers of guarantees:

* the **fixture table** pins every routing rule to a concrete request
  shape (sub-slot durations route to ES, multi-location to MQMB, ...);
* the **exactness properties** assert that routing never changes
  answers — ``algorithm="auto"`` returns the identical segment set to
  forcing the routed algorithm, and to forcing the paper's algorithm
  wherever the paper route is chosen.
"""

import pytest

from repro.api import (
    AUTO,
    QueryOptions,
    ReachabilityClient,
    Request,
    Router,
    RouterConfig,
)
from repro.api.router import PAPER_ALGORITHMS, ROUTING_TABLE
from repro.core.query import MQuery, SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
NEAR = Point(1000.0, 800.0)
FAR = Point(200_000.0, 160_000.0)  # provably beyond any 10-min reach
T = day_time(11)
DT = 300


def s(duration_s=600, prob=0.2, location=CENTER):
    return SQuery(location, T, duration_s, prob)


def m(locations=(CENTER, NEAR), duration_s=600, prob=0.2):
    return MQuery(tuple(locations), T, duration_s, prob)


#: The shape-fixture table: (request, expected algorithm, expected rule).
FIXTURES = [
    # Forward s-queries.
    (Request(s(600)), "sqmb_tbs", "paper-s"),
    (Request(s(1800)), "sqmb_tbs", "paper-s"),
    # Sub-slot duration: the Δt-hop bounding machinery degenerates.
    (Request(s(60)), "es", "sub-slot-es"),
    (Request(s(299)), "es", "sub-slot-es"),
    # ... but a permissive threshold keeps the bounded route.
    (Request(s(60, prob=0.05)), "sqmb_tbs", "paper-s"),
    # Multi-location routes to the paper's unified MQMB.
    (Request(m()), "mqmb_tbs", "paper-m"),
    (Request(m((CENTER, NEAR, Point(-900.0, -700.0)))), "mqmb_tbs", "paper-m"),
    # One distinct location: decomposed-s (MQMB adds nothing).
    (Request(m((CENTER,))), "sqmb_tbs_each", "single-location-decompose"),
    (Request(m((CENTER, CENTER))), "sqmb_tbs_each", "single-location-decompose"),
    # Sub-slot m-query: exhaustive per seed.
    (Request(m(duration_s=120)), "es_each", "sub-slot-es"),
    # Seeds too far apart to interact: decomposed-s.
    (Request(m((CENTER, FAR))), "sqmb_tbs_each", "sparse-decompose"),
    # A clustered pair plus a far outlier is NOT sparse — disjointness
    # must hold for every pair, and the close pair overlaps.
    (Request(m((CENTER, Point(10.0, 0.0), FAR))), "mqmb_tbs", "paper-m"),
    # Reverse direction.
    (
        Request(s(600), QueryOptions(direction="reverse")),
        "sqmb_tbs",
        "reverse-bounds",
    ),
    # A budget forbids the unbounded ES route.
    (
        Request(s(60), QueryOptions(cost_budget_ms=100.0)),
        "sqmb_tbs",
        "budget-bounds",
    ),
    (
        Request(m(duration_s=120), QueryOptions(cost_budget_ms=100.0)),
        "mqmb_tbs",
        "budget-bounds",
    ),
    # Forced algorithms bypass classification.
    (Request(s(60), QueryOptions(algorithm="es_pruned")), "es_pruned", "forced"),
    (Request(m(), QueryOptions(algorithm="sqmb_tbs_each")), "sqmb_tbs_each", "forced"),
]


class TestRouteDecisions:
    @pytest.mark.parametrize(
        "request_, algorithm, rule",
        FIXTURES,
        ids=[f"{r.kind}-{rule}-{alg}" for r, alg, rule in FIXTURES],
    )
    def test_fixture_table(self, request_, algorithm, rule):
        decision = Router().route(request_, DT)
        assert decision.algorithm == algorithm
        assert decision.rule == rule
        assert decision.kind == request_.kind

    def test_decision_records_features(self):
        decision = Router().route(Request(m(duration_s=120)), DT)
        features = dict(decision.features)
        assert features["sub_slot"] is True
        assert features["delta_t_s"] == DT
        assert features["distinct_locations"] == 2
        assert "min_gap_m" in features
        assert decision.describe().startswith("route: m-query")

    def test_forced_records_request(self):
        decision = Router().route(
            Request(s(), QueryOptions(algorithm="es")), DT
        )
        assert decision.rule == "forced"
        assert decision.requested == "es"

    def test_config_thresholds_respected(self):
        lenient = Router(RouterConfig(es_prob_floor=0.01))
        assert lenient.route(Request(s(60, prob=0.05)), DT).algorithm == "es"
        # A small disjointness speed makes nearby seeds "sparse".
        eager = Router(RouterConfig(disjoint_speed_mps=0.001))
        assert (
            eager.route(Request(m()), DT).rule == "sparse-decompose"
        )

    def test_delta_t_changes_sub_slot_classification(self):
        router = Router()
        assert router.route(Request(s(240)), 300).algorithm == "es"
        assert router.route(Request(s(240)), 60).algorithm == "sqmb_tbs"

    def test_routing_table_covers_every_rule(self):
        documented = {rule for rule, _, _ in ROUTING_TABLE}
        fired = {rule for _, _, rule in FIXTURES}
        assert fired <= documented


class TestRoutingExactness:
    """Auto-routing must never change a query's answer."""

    @pytest.fixture(scope="class")
    def client(self, engine):
        return ReachabilityClient(engine)

    # Shapes spanning every route (sub-slot, paper, decomposed, reverse).
    SHAPES = [
        Request(s(600)),
        Request(s(1200, prob=0.5)),
        Request(s(120)),
        Request(m()),
        Request(m((CENTER, NEAR, Point(-900.0, -700.0)), duration_s=1200)),
        Request(m((CENTER,))),
        Request(m(duration_s=120)),
        Request(s(900), QueryOptions(direction="reverse")),
    ]

    @pytest.mark.parametrize(
        "request_", SHAPES, ids=[str(i) for i in range(len(SHAPES))]
    )
    def test_auto_matches_forced_routed_algorithm(self, client, request_):
        """Routing is exact: auto == forcing the algorithm it chose."""
        decision = client.route(request_)
        assert request_.options.algorithm == AUTO
        auto = client.send(request_)
        forced = client.send(
            Request(
                request_.query,
                QueryOptions(
                    direction=request_.options.direction,
                    algorithm=decision.algorithm,
                ),
            )
        )
        assert auto.route.rule != "forced"
        assert forced.route.rule == "forced"
        assert auto.segments == forced.segments
        assert auto.result.probabilities == forced.result.probabilities

    @pytest.mark.parametrize(
        "query",
        [s(600), s(900, prob=0.5), s(1500)],
        ids=["L10", "L15-p50", "L25"],
    )
    def test_auto_s_matches_paper_algorithm(self, client, query):
        """Standard s-shapes route to — and exactly match — SQMB+TBS."""
        auto = client.send(Request(query))
        assert auto.route.algorithm == PAPER_ALGORITHMS["s"]
        forced = client.send(
            Request(query, QueryOptions(algorithm=PAPER_ALGORITHMS["s"]))
        )
        assert auto.segments == forced.segments

    @pytest.mark.parametrize(
        "query",
        [m(), m(duration_s=1200), m((CENTER, NEAR, Point(800.0, -600.0)))],
        ids=["pair", "long", "triple"],
    )
    def test_auto_m_matches_paper_algorithm(self, client, query):
        """Standard m-shapes route to — and exactly match — MQMB+TBS."""
        auto = client.send(Request(query))
        assert auto.route.algorithm == PAPER_ALGORITHMS["m"]
        forced = client.send(
            Request(query, QueryOptions(algorithm=PAPER_ALGORITHMS["m"]))
        )
        assert auto.segments == forced.segments

    def test_sparse_decompose_matches_unified(self, client):
        """The disjointness guard is conservative: decomposed execution
        equals the unified MQMB result when it fires."""
        query = m((CENTER, FAR), duration_s=600)
        auto = client.send(Request(query))
        assert auto.route.rule == "sparse-decompose"
        unified = client.send(
            Request(query, QueryOptions(algorithm="mqmb_tbs"))
        )
        assert auto.segments == unified.segments
