"""Property test: the full index stack against a brute-force oracle.

Hypothesis generates small random trajectory histories; the oracle computes
Eq. 3.1 directly from raw visit dicts (no index, no disk, no twin-merge
shortcuts — just the definition).  The ES baseline running through the
ST-Index / PageStore / BufferPool stack must agree exactly, which pins the
whole read path (slot bucketing, record codecs, window merging, twin
handling) to the paper's semantics.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baseline import exhaustive_search
from repro.core.probability import ProbabilityEstimator
from repro.core.st_index import STIndex
from repro.network.generator import grid_city
from repro.trajectory.model import MatchedTrajectory, SegmentVisit, day_time
from repro.trajectory.store import TrajectoryDatabase

NETWORK = grid_city(rows=3, cols=3, spacing=500.0, primary_every=0, seed=1)
SEGMENT_IDS = sorted(NETWORK.segment_ids())
NUM_DAYS = 4
NUM_TAXIS = 3
T = float(day_time(11))
DELTA_T = 300
DURATION = 900


def road_of(segment_id: int) -> int:
    return NETWORK.segment(segment_id).canonical_id()


visits_strategy = st.lists(
    st.tuples(
        st.sampled_from(SEGMENT_IDS),
        st.floats(T - 200, T + DURATION + 200),
    ),
    min_size=1,
    max_size=12,
)
history_strategy = st.lists(
    st.tuples(
        st.integers(0, NUM_TAXIS - 1),
        st.integers(0, NUM_DAYS - 1),
        visits_strategy,
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda t: (t[0], t[1]),
)


def build_index(history):
    db = TrajectoryDatabase(num_taxis=NUM_TAXIS, num_days=NUM_DAYS)
    raw: dict[tuple[int, int], list[tuple[int, float]]] = {}
    for taxi, day, visits in history:
        ordered = sorted(visits, key=lambda v: v[1])
        tid = day * NUM_TAXIS + taxi
        db.add(
            MatchedTrajectory(
                trajectory_id=tid, taxi_id=taxi, date=day,
                visits=[SegmentVisit(s, t, 5.0) for s, t in ordered],
            )
        )
        raw[(tid, day)] = ordered
    db.finalize()
    index = STIndex(NETWORK, DELTA_T)
    index.build(db)
    return index, raw


def oracle_probability(raw, start_segment: int, target_segment: int) -> float:
    """Eq. 3.1 straight from the definition, with road-level merging and
    the index's slot-granular windows."""
    slot_start = (T // DELTA_T) * DELTA_T
    start_window = (slot_start, slot_start + DELTA_T)
    target_window = (slot_start, slot_start + DURATION)
    start_roads = {road_of(start_segment)}
    target_roads = {road_of(target_segment)}
    per_day_start: dict[int, set[int]] = defaultdict(set)
    per_day_target: dict[int, set[int]] = defaultdict(set)
    for (tid, day), visits in raw.items():
        for segment, time_s in visits:
            # The index buckets by slot, so windows align to slots.
            slot_time = (time_s // DELTA_T) * DELTA_T
            if (
                road_of(segment) in start_roads
                and start_window[0] <= slot_time < start_window[1]
            ):
                per_day_start[day].add(tid)
            if (
                road_of(segment) in target_roads
                and target_window[0] <= slot_time < target_window[1]
            ):
                per_day_target[day].add(tid)
    good = sum(
        1
        for day in per_day_start
        if per_day_start[day] & per_day_target.get(day, set())
    )
    return good / NUM_DAYS


class TestSemanticsAgainstOracle:
    @settings(max_examples=40, deadline=None)
    @given(history=history_strategy, start=st.sampled_from(SEGMENT_IDS))
    def test_probabilities_match_oracle(self, history, start):
        index, raw = build_index(history)
        estimator = ProbabilityEstimator(index, start, T, DURATION, NUM_DAYS)
        for target in SEGMENT_IDS[::3]:
            assert estimator.probability(target) == pytest.approx(
                oracle_probability(raw, start, target)
            ), f"target {target}"

    @settings(max_examples=25, deadline=None)
    @given(
        history=history_strategy,
        start=st.sampled_from(SEGMENT_IDS),
        prob=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
    )
    def test_es_region_matches_oracle_threshold(self, history, start, prob):
        index, raw = build_index(history)
        estimator = ProbabilityEstimator(index, start, T, DURATION, NUM_DAYS)
        result = exhaustive_search(NETWORK, estimator, prob)
        expected_roads = {
            road_of(s)
            for s in SEGMENT_IDS
            if oracle_probability(raw, start, s) >= prob
        }
        got_roads = {road_of(s) for s in result.region}
        assert got_roads == expected_roads
