"""Public-API surface snapshot: changes to ``repro.api`` must be loud.

The client API is the repo's stability contract — apps, the CLI, the
eval harness and external users all program against it.  This snapshot
makes any accidental surface change (a dropped export, a renamed field,
an unfrozen envelope) fail the gate explicitly, so widening the API is
always a reviewed decision.
"""

import dataclasses

import pytest

import repro
import repro.api as api

#: The frozen surface of ``repro.api``.  Update deliberately.
API_SURFACE = (
    "AUTO",
    "BatchStream",
    "QueryOptions",
    "ROUTING_TABLE",
    "ReachabilityClient",
    "Request",
    "Response",
    "RouteDecision",
    "Router",
    "RouterConfig",
    "as_client",
)

#: Client API names re-exported at the top level.
TOP_LEVEL_REEXPORTS = (
    "ReachabilityClient",
    "Request",
    "Response",
    "QueryOptions",
    "Router",
    "RouteDecision",
    "as_client",
)

#: Field names of the frozen envelopes (kwarg compatibility contract).
OPTION_FIELDS = (
    "direction",
    "algorithm",
    "delta_t_s",
    "warm",
    "reuse_regions",
    "tag",
    "cost_budget_ms",
)

DECISION_FIELDS = ("kind", "algorithm", "rule", "reason", "requested", "features")


class TestSurfaceSnapshot:
    def test_all_matches_snapshot(self):
        assert tuple(sorted(api.__all__)) == API_SURFACE

    def test_every_export_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.{name} missing"

    def test_top_level_reexports(self):
        for name in TOP_LEVEL_REEXPORTS:
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(api, name)

    def test_client_entry_points(self):
        for method in ("send", "submit", "stream", "run_batch", "plan",
                       "route", "explain", "close"):
            assert callable(getattr(api.ReachabilityClient, method))


class TestEnvelopeContracts:
    def test_query_options_fields(self):
        assert tuple(
            f.name for f in dataclasses.fields(api.QueryOptions)
        ) == OPTION_FIELDS

    def test_route_decision_fields(self):
        assert tuple(
            f.name for f in dataclasses.fields(api.RouteDecision)
        ) == DECISION_FIELDS

    @pytest.mark.parametrize(
        "instance",
        [
            api.QueryOptions(),
            api.RouterConfig(),
            api.RouteDecision(
                kind="s", algorithm="sqmb_tbs", rule="paper-s", reason="test"
            ),
        ],
        ids=["QueryOptions", "RouterConfig", "RouteDecision"],
    )
    def test_envelopes_frozen(self, instance):
        field = dataclasses.fields(instance)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(instance, field, None)

    def test_routing_table_shape(self):
        assert len(api.ROUTING_TABLE) >= 7
        for rule, condition, route in api.ROUTING_TABLE:
            assert rule and condition and route
