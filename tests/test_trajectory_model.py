"""Tests for trajectory models, speed profiles and the database."""

import numpy as np
import pytest

from repro.network.model import RoadLevel
from repro.trajectory.model import (
    MatchedTrajectory,
    SECONDS_PER_DAY,
    SegmentVisit,
    day_time,
    make_trajectory_id,
    split_trajectory_id,
)
from repro.trajectory.speed_profile import RushHour, SpeedProfile
from repro.trajectory.store import TrajectoryDatabase


class TestIds:
    def test_roundtrip(self):
        tid = make_trajectory_id(taxi_id=7, date=3, num_taxis=25)
        assert split_trajectory_id(tid, 25) == (7, 3)

    def test_uniqueness(self):
        ids = {
            make_trajectory_id(t, d, 10)
            for t in range(10)
            for d in range(30)
        }
        assert len(ids) == 300

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            make_trajectory_id(10, 0, 10)
        with pytest.raises(ValueError):
            make_trajectory_id(0, -1, 10)


class TestDayTime:
    def test_basic(self):
        assert day_time(0) == 0
        assert day_time(11) == 39600
        assert day_time(23, 59, 59) == SECONDS_PER_DAY - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            day_time(24)
        with pytest.raises(ValueError):
            day_time(0, 60)


class TestMatchedTrajectory:
    def test_segments_and_monotone(self):
        traj = MatchedTrajectory(
            trajectory_id=0, taxi_id=0, date=0,
            visits=[SegmentVisit(1, 0.0, 5.0), SegmentVisit(2, 10.0, 5.0)],
        )
        assert traj.segments() == [1, 2]
        traj.check_monotone()

    def test_non_monotone_raises(self):
        traj = MatchedTrajectory(
            trajectory_id=0, taxi_id=0, date=0,
            visits=[SegmentVisit(1, 10.0, 5.0), SegmentVisit(2, 0.0, 5.0)],
        )
        with pytest.raises(ValueError):
            traj.check_monotone()


class TestSpeedProfile:
    def test_rush_hour_dips(self):
        profile = SpeedProfile()
        morning = profile.congestion_factor(day_time(7, 45))
        evening = profile.congestion_factor(day_time(18))
        midday = profile.congestion_factor(day_time(13))
        assert morning < 0.55
        assert evening < 0.5
        assert midday > 0.8

    def test_night_boost(self):
        profile = SpeedProfile()
        assert profile.congestion_factor(day_time(0, 30)) > 1.0

    def test_speed_by_level(self):
        profile = SpeedProfile()
        t = day_time(13)
        assert profile.speed(RoadLevel.PRIMARY, t) > profile.speed(
            RoadLevel.SECONDARY, t
        )

    def test_sample_speed_floor(self):
        import random

        profile = SpeedProfile()
        rng = random.Random(1)
        for _ in range(200):
            assert profile.sample_speed(RoadLevel.SECONDARY, 0, rng) >= 0.5

    def test_speed_bounds_bracket_typical(self):
        profile = SpeedProfile()
        t = day_time(13)
        low, high = profile.speed_bounds(RoadLevel.PRIMARY, t)
        typical = profile.speed(RoadLevel.PRIMARY, t)
        assert low < typical < high

    def test_custom_rush_hour(self):
        profile = SpeedProfile(
            rush_hours=[RushHour(center_s=day_time(12), width_s=1800, depth=0.9)]
        )
        assert profile.congestion_factor(day_time(12)) < 0.2
        assert profile.congestion_factor(day_time(6)) >= 1.0

    def test_wraparound_midnight(self):
        profile = SpeedProfile(
            rush_hours=[RushHour(center_s=day_time(23, 50), width_s=1200, depth=0.5)],
            night_boost=1.0,
        )
        # 00:05 should feel the 23:50 dip through wrap-around.
        assert profile.congestion_factor(day_time(0, 5)) < 0.7


def _traj(tid, taxi, date, visits):
    return MatchedTrajectory(
        trajectory_id=tid, taxi_id=taxi, date=date,
        visits=[SegmentVisit(*v) for v in visits],
    )


class TestTrajectoryDatabase:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            TrajectoryDatabase(0, 10)

    def test_add_and_get(self):
        db = TrajectoryDatabase(2, 3)
        db.add(_traj(0, 0, 0, [(5, 100.0, 3.0), (6, 200.0, 4.0)]))
        got = db.get(0)
        assert got is not None
        assert got.segments() == [5, 6]
        assert got.visits[1].speed_mps == pytest.approx(4.0)
        assert db.get(99) is None

    def test_duplicate_rejected(self):
        db = TrajectoryDatabase(2, 3)
        db.add(_traj(0, 0, 0, [(5, 100.0, 3.0)]))
        with pytest.raises(ValueError):
            db.add(_traj(0, 0, 0, [(5, 100.0, 3.0)]))

    def test_date_out_of_range(self):
        db = TrajectoryDatabase(2, 3)
        with pytest.raises(ValueError):
            db.add(_traj(0, 0, 5, [(5, 100.0, 3.0)]))

    def test_add_arrays(self):
        db = TrajectoryDatabase(2, 3)
        db.add_arrays(1, 1, 0, [4, 5], [10.0, 20.0], [2.0, 3.0])
        assert db.get(1).segments() == [4, 5]
        with pytest.raises(ValueError):
            db.add_arrays(1, 1, 0, [4], [10.0], [2.0])

    def test_speed_stats_min_max_mean(self):
        db = TrajectoryDatabase(3, 2)
        hour11 = day_time(11)
        db.add(_traj(0, 0, 0, [(7, hour11, 2.0)]))
        db.add(_traj(1, 1, 0, [(7, hour11 + 60, 6.0)]))
        db.add(_traj(2, 2, 0, [(7, hour11 + 120, 4.0)]))
        stats = db.speed_stats(7, 11)
        assert stats.min_mps == pytest.approx(2.0)
        assert stats.max_mps == pytest.approx(6.0)
        assert stats.mean_mps == pytest.approx(4.0)
        assert stats.count == 3

    def test_speed_stats_absent(self):
        db = TrajectoryDatabase(1, 1)
        db.add(_traj(0, 0, 0, [(7, day_time(11), 2.0)]))
        assert db.speed_stats(7, 3) is None
        assert db.speed_stats(99, 11) is None

    def test_observed_bounds_hour_fallback(self):
        db = TrajectoryDatabase(1, 1)
        db.add(_traj(0, 0, 0, [(7, day_time(11), 2.0)]))
        # Hour 12 has no data; hour 11 is a neighbour.
        bounds = db.observed_speed_bounds(7, day_time(12, 30))
        assert bounds == (pytest.approx(2.0), pytest.approx(2.0))
        assert db.observed_speed_bounds(7, day_time(3)) is None
        assert db.observed_speed_bounds(999, day_time(11)) is None

    def test_stats_summary(self):
        db = TrajectoryDatabase(2, 2)
        db.add(_traj(0, 0, 0, [(1, 0.0, 1.0), (2, 5.0, 1.0)]))
        db.add(_traj(2, 0, 1, [(1, 0.0, 1.0)]))
        summary = db.stats()
        assert summary.num_trajectories == 2
        assert summary.num_visits == 3
        assert summary.num_taxis == 2
        assert len(summary.as_rows()) == 4

    def test_iter_compact_matches_objects(self):
        db = TrajectoryDatabase(2, 2)
        db.add(_traj(0, 0, 0, [(1, 0.0, 1.0), (2, 5.0, 2.0)]))
        compact = list(db.iter_compact())
        assert len(compact) == 1
        tid, date, segs, times = compact[0]
        assert tid == 0 and date == 0
        assert segs.dtype == np.int32
        assert list(segs) == [1, 2]
        assert list(times) == [0.0, 5.0]

    def test_finalize_idempotent(self):
        db = TrajectoryDatabase(1, 1)
        db.add(_traj(0, 0, 0, [(1, day_time(5), 3.0)]))
        db.finalize()
        first = db.speed_stats(1, 5)
        db.finalize()
        assert db.speed_stats(1, 5) == first

    def test_zero_speed_excluded_from_stats(self):
        db = TrajectoryDatabase(2, 1)
        db.add(_traj(0, 0, 0, [(1, day_time(5), 0.0)]))
        db.add(_traj(1, 1, 0, [(1, day_time(5), 3.0)]))
        stats = db.speed_stats(1, 5)
        assert stats.min_mps == pytest.approx(3.0)
        assert stats.count == 1
