"""Unit and property tests for the R-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BBox, Point
from repro.spatial.rtree import RTree


def box_at(x: float, y: float, size: float = 1.0) -> BBox:
    return BBox(x, y, x + size, y + size)


def random_boxes(n: int, seed: int = 0) -> list[tuple[BBox, int]]:
    rng = random.Random(seed)
    items = []
    for i in range(n):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        items.append((box_at(x, y, rng.uniform(0.5, 20)), i))
    return items


class TestConstruction:
    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_invalid_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=7)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(BBox(0, 0, 1, 1)) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_sizes(self):
        for n in (1, 5, 16, 17, 100, 333):
            tree = RTree.bulk_load(random_boxes(n), max_entries=8)
            assert len(tree) == n
            tree.check_invariants()
            assert sorted(tree.items()) == list(range(n))


class TestInsert:
    def test_insert_and_search(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(box_at(i * 10, 0), i)
        tree.check_invariants()
        found = tree.search(BBox(95, -1, 125, 2))
        assert sorted(found) == [10, 11, 12]

    def test_insert_many_keeps_invariants(self):
        tree = RTree(max_entries=4)
        for box, item in random_boxes(200, seed=3):
            tree.insert(box, item)
        tree.check_invariants()
        assert len(tree) == 200

    def test_search_point(self):
        tree = RTree(max_entries=4)
        tree.insert(BBox(0, 0, 10, 10), "a")
        tree.insert(BBox(5, 5, 15, 15), "b")
        assert sorted(tree.search_point(Point(7, 7))) == ["a", "b"]
        assert tree.search_point(Point(12, 2)) == []


class TestSearchCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_window_query_matches_brute_force(self, seed):
        rng = random.Random(seed)
        items = random_boxes(rng.randint(1, 120), seed=seed)
        tree = RTree.bulk_load(items, max_entries=6)
        window = BBox(
            rng.uniform(0, 800), rng.uniform(0, 800),
            rng.uniform(800, 1100), rng.uniform(800, 1100),
        )
        expected = sorted(i for box, i in items if box.intersects(window))
        assert sorted(tree.search(window)) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_insert_path_matches_bulk_load_results(self, seed):
        items = random_boxes(60, seed=seed)
        bulk = RTree.bulk_load(items, max_entries=5)
        incremental = RTree(max_entries=5)
        for box, item in items:
            incremental.insert(box, item)
        window = BBox(100, 100, 500, 500)
        assert sorted(bulk.search(window)) == sorted(incremental.search(window))


class TestNearest:
    def test_nearest_single(self):
        items = [(box_at(x * 100, 0, 1), x) for x in range(10)]
        tree = RTree.bulk_load(items)
        assert tree.nearest(Point(420, 0), k=1) == [4]

    def test_nearest_k_ordering(self):
        items = [(box_at(x * 100, 0, 1), x) for x in range(10)]
        tree = RTree.bulk_load(items)
        assert tree.nearest(Point(0, 0), k=3) == [0, 1, 2]

    def test_nearest_k_zero(self):
        tree = RTree.bulk_load(random_boxes(10))
        assert tree.nearest(Point(0, 0), k=0) == []

    def test_nearest_k_larger_than_size(self):
        tree = RTree.bulk_load(random_boxes(5))
        assert len(tree.nearest(Point(0, 0), k=50)) == 5

    def test_nearest_with_exact_distance(self):
        # Items are (x, y) pairs; exact distance uses the true point, which
        # differs from the bbox corner for fat boxes.
        items = [(BBox(0, 0, 100, 100), (90.0, 90.0)), (BBox(40, 40, 60, 60), (50.0, 50.0))]
        tree = RTree.bulk_load(items)
        nearest = tree.nearest(
            Point(85, 85),
            k=1,
            distance=lambda p, it: p.distance_to(Point(it[0], it[1])),
        )
        assert nearest == [(90.0, 90.0)]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_nearest_matches_brute_force(self, seed):
        rng = random.Random(seed)
        items = random_boxes(rng.randint(1, 80), seed=seed + 1)
        tree = RTree.bulk_load(items, max_entries=6)
        probe = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        expected = min(items, key=lambda pair: pair[0].distance_to_point(probe))[1]
        got = tree.nearest(probe, k=1)[0]
        got_box = items[got][0]
        expected_box = items[expected][0]
        assert got_box.distance_to_point(probe) == pytest.approx(
            expected_box.distance_to_point(probe)
        )
