"""Tests for the simulated disk, page store, buffer pool and codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.disk import DiskError, DiskStats, SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore
from repro.storage.serialization import (
    SerializationError,
    decode_float_list,
    decode_int_list,
    decode_str,
    encode_float_list,
    encode_int_list,
    encode_str,
)


class TestSimulatedDisk:
    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            SimulatedDisk(page_size=0)

    def test_allocate_does_not_charge(self):
        disk = SimulatedDisk()
        disk.allocate()
        assert disk.stats.page_reads == 0
        assert disk.stats.page_writes == 0

    def test_write_read_roundtrip(self):
        disk = SimulatedDisk(page_size=64)
        page = disk.allocate()
        disk.write_page(page, b"hello")
        assert disk.read_page(page) == b"hello"
        assert disk.stats.page_writes == 1
        assert disk.stats.page_reads == 1
        assert disk.stats.bytes_written == 5
        assert disk.stats.bytes_read == 5

    def test_oversized_payload_rejected(self):
        disk = SimulatedDisk(page_size=8)
        page = disk.allocate()
        with pytest.raises(DiskError):
            disk.write_page(page, b"x" * 9)

    def test_bad_page_id(self):
        disk = SimulatedDisk()
        with pytest.raises(DiskError):
            disk.read_page(0)

    def test_simulated_io_accounting(self):
        disk = SimulatedDisk(read_latency_ms=5.0, write_latency_ms=7.0)
        page = disk.allocate()
        disk.write_page(page, b"a")
        disk.read_page(page)
        disk.read_page(page)
        assert disk.simulated_io_ms() == pytest.approx(2 * 5.0 + 7.0)

    def test_snapshot_diff(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"a")
        before = disk.snapshot()
        disk.read_page(page)
        diff = disk.snapshot() - before
        assert diff.page_reads == 1
        assert diff.page_writes == 0

    def test_reset(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"a")
        disk.reset_stats()
        assert disk.stats == DiskStats()


class TestPageStore:
    def test_small_record_roundtrip(self):
        store = PageStore(SimulatedDisk(page_size=32))
        ptr = store.append(b"hello world")
        assert store.read(ptr) == b"hello world"

    def test_record_spanning_pages(self):
        store = PageStore(SimulatedDisk(page_size=16))
        payload = bytes(range(100))
        ptr = store.append(payload)
        assert len(ptr.page_ids) >= 6
        assert store.read(ptr) == payload

    def test_many_records_roundtrip(self):
        store = PageStore(SimulatedDisk(page_size=64))
        pointers = [
            store.append(bytes([i]) * (i % 150 + 1)) for i in range(100)
        ]
        for i, ptr in enumerate(pointers):
            assert store.read(ptr) == bytes([i]) * (i % 150 + 1)

    def test_read_charges_page_chain(self):
        disk = SimulatedDisk(page_size=16)
        store = PageStore(disk)
        ptr = store.append(b"z" * 50)  # spans 4 pages
        before = disk.snapshot()
        store.read(ptr)
        assert (disk.snapshot() - before).page_reads == len(ptr.page_ids)

    def test_empty_record(self):
        store = PageStore(SimulatedDisk(page_size=16))
        ptr = store.append(b"")
        assert store.read(ptr) == b""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=300), min_size=1, max_size=40),
           st.integers(8, 256))
    def test_roundtrip_property(self, payloads, page_size):
        store = PageStore(SimulatedDisk(page_size=page_size))
        pointers = [store.append(p) for p in payloads]
        for payload, ptr in zip(payloads, pointers):
            assert store.read(ptr) == payload


class TestBufferPool:
    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(SimulatedDisk(), capacity=-1)

    def test_cache_hit_avoids_disk(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=4)
        page = disk.allocate()
        disk.write_page(page, b"data")
        pool.get_page(page)
        reads_after_first = disk.stats.page_reads
        pool.get_page(page)
        assert disk.stats.page_reads == reads_after_first
        assert pool.hits == 1 and pool.misses == 1
        assert pool.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_never_caches(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=0)
        page = disk.allocate()
        disk.write_page(page, b"x")
        pool.get_page(page)
        pool.get_page(page)
        assert disk.stats.page_reads == 2

    def test_lru_eviction(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=2)
        pages = [disk.allocate() for _ in range(3)]
        for p in pages:
            disk.write_page(p, b"p")
        pool.get_page(pages[0])
        pool.get_page(pages[1])
        pool.get_page(pages[2])  # evicts pages[0]
        before = disk.stats.page_reads
        pool.get_page(pages[0])
        assert disk.stats.page_reads == before + 1

    def test_invalidate_single_and_all(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=4)
        page = disk.allocate()
        disk.write_page(page, b"x")
        pool.get_page(page)
        pool.invalidate(page)
        pool.get_page(page)
        assert pool.misses == 2
        pool.invalidate()
        pool.get_page(page)
        assert pool.misses == 3

    def test_eviction_counter(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=2)
        pages = [disk.allocate() for _ in range(3)]
        for p in pages:
            disk.write_page(p, b"p")
        for p in pages:
            pool.get_page(p)
        assert pool.evictions == 1
        pool.get_page(pages[0])  # evicted above -> miss + second eviction
        assert pool.evictions == 2

    def test_snapshot_aggregates_pool_counters(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=1)
        pages = [disk.allocate() for _ in range(2)]
        for p in pages:
            disk.write_page(p, b"p")
        before = disk.snapshot()
        pool.get_page(pages[0])
        pool.get_page(pages[0])
        pool.get_page(pages[1])  # evicts pages[0]
        diff = disk.snapshot() - before
        assert diff.pool_hits == 1
        assert diff.pool_misses == 2
        assert diff.pool_evictions == 1
        assert diff.pool_hit_rate == pytest.approx(1 / 3)

    def test_pagestore_read_through_pool(self):
        disk = SimulatedDisk(page_size=16)
        store = PageStore(disk)
        ptr = store.append(b"q" * 40)
        pool = BufferPool(disk, capacity=8)
        store.read(ptr, pool=pool)
        reads = disk.stats.page_reads
        assert store.read(ptr, pool=pool) == b"q" * 40
        assert disk.stats.page_reads == reads  # fully cached


class TestSerialization:
    def test_int_list_roundtrip(self):
        values = [0, 1, 127, 128, 300, 2**40]
        assert decode_int_list(encode_int_list(values)) == values

    def test_int_list_empty(self):
        assert decode_int_list(encode_int_list([])) == []

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_int_list([-1])

    def test_truncated_payload(self):
        payload = encode_int_list([1, 2, 3])
        with pytest.raises(SerializationError):
            decode_int_list(payload[:-1])

    def test_str_roundtrip(self):
        assert decode_str(encode_str("héllo wörld")) == "héllo wörld"

    def test_str_truncated(self):
        with pytest.raises(SerializationError):
            decode_str(b"\x05\x00\x00\x00ab")

    def test_float_list_roundtrip(self):
        values = [0.0, -1.5, 3.14159, 1e300]
        assert decode_float_list(encode_float_list(values)) == values

    def test_float_list_truncated(self):
        with pytest.raises(SerializationError):
            decode_float_list(encode_float_list([1.0])[:-3])

    @given(st.lists(st.integers(0, 2**62), max_size=200))
    def test_int_list_property(self, values):
        assert decode_int_list(encode_int_list(values)) == values

    @given(st.text(max_size=200))
    def test_str_property(self, text):
        assert decode_str(encode_str(text)) == text


class TestDiskStatsLockedReads:
    """Regression tests for RL001 fixes: counter reads that used to peek
    at ``stats``/``_used`` without the disk lock now snapshot under it."""

    def test_simulated_io_ms_default_snapshots_own_stats(self):
        disk = SimulatedDisk(page_size=16, read_latency_ms=5.0, write_latency_ms=7.0)
        page = disk.allocate()
        disk.write_page(page, b"x" * 16)
        disk.read_page(page)
        assert disk.simulated_io_ms() == 5.0 + 7.0
        # Explicit stats still win over the internal counters.
        assert disk.simulated_io_ms(disk.snapshot()) == disk.simulated_io_ms()

    def test_num_pages_and_repr_while_writing(self):
        import threading

        disk = SimulatedDisk(page_size=16)
        errors: list[BaseException] = []
        stop = threading.Event()

        def observer():
            try:
                while not stop.is_set():
                    assert disk.num_pages >= 0
                    assert "SimulatedDisk(" in repr(disk)
                    disk.simulated_io_ms()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=observer)
        t.start()
        for _ in range(200):
            page = disk.allocate()
            disk.write_page(page, b"y" * 16)
        stop.set()
        t.join()
        assert errors == []
        assert disk.num_pages == 200
        assert disk.snapshot().page_writes == 200
