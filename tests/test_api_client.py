"""Tests for the request/response client: envelopes, streaming, batches.

Covers the acceptance criteria of the client-API redesign:

* ``stream()`` yields responses incrementally with batch totals (page
  reads, regions computed/reused) matching ``run_batch`` on the fig-4.8
  workload;
* mixed batches may contain reverse queries (per-request ``direction``),
  each matching its sequential equivalent;
* single queries run through the service-lifetime region cache
  (``regions_reused`` increments across repeated sends);
* the legacy ``QueryService``/engine entry points still work and emit
  ``DeprecationWarning``.
"""

import warnings

import pytest

from repro.api import (
    QueryOptions,
    ReachabilityClient,
    Request,
    Response,
    as_client,
)
from repro.core.query import MQuery, SQuery
from repro.core.service import QueryService
from repro.eval import config
from repro.eval.workload import fig48_m_query_batch
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


@pytest.fixture()
def client(engine):
    return ReachabilityClient(engine)


@pytest.fixture(scope="module")
def fig48_requests(test_dataset):
    """The Fig 4.8(a)-style m-query workload as client requests."""
    locations = tuple(loc for loc in config.M_QUERY_LOCATIONS[:3])
    return [
        Request(query)
        for query in fig48_m_query_batch(
            locations, durations_s=(600, 1200, 1800), start_time_s=T, prob=0.2
        )
    ]


class TestEnvelopes:
    def test_options_validate_direction(self):
        with pytest.raises(ValueError):
            QueryOptions(direction="sideways")

    def test_options_validate_budget(self):
        with pytest.raises(ValueError):
            QueryOptions(cost_budget_ms=-1.0)

    def test_reverse_m_query_rejected(self):
        with pytest.raises(ValueError):
            Request(
                MQuery((CENTER,), T, 600, 0.2),
                QueryOptions(direction="reverse"),
            )

    def test_request_kind(self):
        assert Request(SQuery(CENTER, T, 600, 0.2)).kind == "s"
        assert Request(MQuery((CENTER,), T, 600, 0.2)).kind == "m"
        assert (
            Request(
                SQuery(CENTER, T, 600, 0.2), QueryOptions(direction="reverse")
            ).kind
            == "r"
        )

    def test_request_frozen_and_hashable(self):
        request = Request(SQuery(CENTER, T, 600, 0.2))
        with pytest.raises(AttributeError):
            request.query = None
        assert hash(request) == hash(Request(SQuery(CENTER, T, 600, 0.2)))

    def test_non_query_rejected(self):
        with pytest.raises(TypeError):
            Request("not a query")


class TestSend:
    def test_send_matches_forced_engine_path(self, engine, client):
        query = SQuery(CENTER, T, 600, 0.2)
        response = client.send(
            Request(query, QueryOptions(algorithm="sqmb_tbs"))
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            classic = engine.s_query(query)
        assert response.segments == classic.segments
        assert response.plan.algorithm == "sqmb_tbs"

    def test_send_accepts_bare_query(self, client):
        response = client.send(SQuery(CENTER, T, 600, 0.2))
        assert isinstance(response, Response)
        assert response.route.rule == "paper-s"

    def test_single_queries_reuse_cached_regions(self, engine):
        """Regression: single sends share the service-lifetime region
        cache instead of re-expanding bounds the cache already holds."""
        client = ReachabilityClient(engine)
        request = Request(SQuery(CENTER, T, 600, 0.2))
        first = client.send(request)
        assert first.regions_computed == 2  # far + near
        assert first.regions_reused == 0
        second = client.send(request)
        assert second.regions_computed == 0
        assert second.regions_reused == 2
        assert second.segments == first.segments
        # A different threshold still shares the shape-keyed bounds.
        third = client.send(Request(SQuery(CENTER, T, 600, 0.8)))
        assert third.regions_computed == 0
        assert third.regions_reused == 2

    def test_deprecated_service_query_reuses_cached_regions(self, engine):
        """The legacy shim runs through the same cache (the original bug:
        QueryService.query bypassed the service-lifetime RegionCache)."""
        service = QueryService(engine)
        query = SQuery(CENTER, T, 600, 0.2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            service.query(query)
            baseline = service.region_cache.stats()
            service.query(query)
            after = service.region_cache.stats()
        assert after["hits"] == baseline["hits"] + 2
        assert after["misses"] == baseline["misses"]

    def test_reuse_regions_opt_out(self, engine):
        """The paper's cold protocol stays expressible per request."""
        client = ReachabilityClient(engine)
        request = Request(
            SQuery(CENTER, T, 600, 0.2), QueryOptions(reuse_regions=False)
        )
        client.send(request)
        repeat = client.send(request)
        assert repeat.regions_computed == 2
        assert repeat.regions_reused == 0

    def test_budget_reported(self, client):
        cheap = client.send(
            Request(
                SQuery(CENTER, T, 600, 0.2),
                QueryOptions(cost_budget_ms=1e9),
            )
        )
        assert cheap.within_budget is True
        tight = client.send(
            Request(
                SQuery(CENTER, T, 600, 0.2),
                QueryOptions(cost_budget_ms=1e-6),
            )
        )
        assert tight.within_budget is False
        unbudgeted = client.send(Request(SQuery(CENTER, T, 600, 0.2)))
        assert unbudgeted.within_budget is None

    def test_submit_futures(self, engine):
        with ReachabilityClient(engine) as client:
            futures = [
                client.submit(Request(SQuery(CENTER, T, 600, prob)))
                for prob in (0.2, 0.4, 0.8)
            ]
            responses = [future.result() for future in futures]
        direct = ReachabilityClient(engine)
        for response, prob in zip(responses, (0.2, 0.4, 0.8)):
            expected = direct.send(Request(SQuery(CENTER, T, 600, prob)))
            assert response.segments == expected.segments

    def test_explain_carries_route(self, client):
        explanation = client.explain(Request(SQuery(CENTER, T, 600, 0.2)))
        assert explanation.route is not None
        assert explanation.route.algorithm == "sqmb_tbs"
        assert "route:" in explanation.to_text()
        assert explanation.stages  # staged decomposition ran
        # Non-paper routes still explain the plan and decision.
        sub_slot = client.explain(Request(SQuery(CENTER, T, 60, 0.2)))
        assert sub_slot.route.algorithm == "es"
        assert sub_slot.plan.algorithm == "es"


class TestStream:
    def test_stream_yields_incrementally_with_matching_totals(
        self, engine, fig48_requests
    ):
        """The acceptance workload: stream == run_batch, delivered one
        response at a time."""
        batch_client = ReachabilityClient(engine)
        report = batch_client.run_batch(fig48_requests)

        stream_client = ReachabilityClient(engine)
        stream = stream_client.stream(fig48_requests)
        seen = []
        for response in stream:
            seen.append(response)
            # Incremental delivery: responses so far are visible before
            # the stream is exhausted.
            assert len(stream.responses) == len(seen)
        assert [r.sequence for r in seen] == list(range(len(fig48_requests)))
        assert [r.segments for r in seen] == [
            r.segments for r in report.results
        ]
        totals = stream.report
        assert totals.page_reads == report.page_reads
        assert totals.regions_computed == report.regions_computed
        assert totals.regions_reused == report.regions_reused
        assert totals.plans_reused == report.plans_reused
        assert totals.simulated_io_ms == report.simulated_io_ms

    def test_mixed_direction_batch_matches_sequential(self, engine):
        """Regression: one batch freely mixes s/m/reverse queries, each
        matching its sequential single-query equivalent."""
        requests = [
            Request(SQuery(CENTER, T, 600, 0.2)),
            Request(
                SQuery(Point(400.0, 300.0), T, 900, 0.2),
                QueryOptions(direction="reverse"),
            ),
            Request(MQuery((CENTER, Point(1000.0, 800.0)), T, 600, 0.2)),
            Request(
                SQuery(CENTER, T, 600, 0.4),
                QueryOptions(direction="reverse"),
            ),
        ]
        report = ReachabilityClient(engine).run_batch(requests)
        sequential = [
            ReachabilityClient(engine).send(request) for request in requests
        ]
        assert [r.segments for r in report.results] == [
            r.segments for r in sequential
        ]
        kinds = [plan.kind for plan in report.plans]
        assert kinds == ["s", "r", "m", "r"]
        assert [route.kind for route in report.routes] == kinds

    def test_legacy_run_batch_totals_unchanged(self, engine, fig48_requests):
        """QueryService.run_batch is a shim over the stream pipeline and
        keeps its exact totals."""
        service = QueryService(engine)
        queries = [request.query for request in fig48_requests]
        report = service.run_batch(queries)
        expected = ReachabilityClient(QueryService(engine)).run_batch(
            [
                Request(
                    q,
                    QueryOptions(algorithm="mqmb_tbs", delta_t_s=300),
                )
                for q in queries
            ]
        )
        assert [r.segments for r in report.results] == [
            r.segments for r in expected.results
        ]
        assert report.page_reads == expected.page_reads
        assert report.plans_reused == expected.plans_reused
        assert [route.rule for route in report.routes] == ["forced"] * len(
            queries
        )

    def test_threaded_stream_matches_serial(self, engine, fig48_requests):
        serial = ReachabilityClient(engine).run_batch(fig48_requests)
        threaded_client = ReachabilityClient(engine)
        stream = threaded_client.stream(
            fig48_requests, max_workers=4, window=2 * 4
        )
        responses = sorted(stream, key=lambda r: r.sequence)
        assert [r.segments for r in responses] == [
            r.segments for r in serial.results
        ]
        assert (
            stream.report.regions_computed + stream.report.regions_reused
            == serial.regions_computed + serial.regions_reused
        )

    def test_stream_mixed_delta_t(self, engine):
        """Per-request Δt rides in the envelope; contexts stay per-Δt."""
        requests = [
            Request(SQuery(CENTER, T, 600, 0.2), QueryOptions(delta_t_s=300)),
            Request(SQuery(CENTER, T, 600, 0.2), QueryOptions(delta_t_s=600)),
        ]
        report = ReachabilityClient(engine).run_batch(requests)
        assert [plan.delta_t_s for plan in report.plans] == [300, 600]
        assert len(report.results) == 2

    def test_empty_stream(self, client):
        stream = client.stream([])
        assert list(stream) == []
        assert stream.report.results == []
        assert stream.report.page_reads == 0

    def test_stream_propagates_executor_errors(self, engine):
        client = ReachabilityClient(engine)
        bad = Request(
            SQuery(CENTER, T, 600, 0.2), QueryOptions(algorithm="nope")
        )
        with pytest.raises(ValueError, match="unknown"):
            client.stream([bad])


class TestDeprecations:
    def test_engine_facade_warns(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        with pytest.warns(DeprecationWarning, match="s_query is deprecated"):
            engine.s_query(query)
        with pytest.warns(DeprecationWarning, match="m_query is deprecated"):
            engine.m_query(MQuery((CENTER,), T, 600, 0.2))
        with pytest.warns(DeprecationWarning, match="r_query is deprecated"):
            engine.r_query(query)

    def test_service_wrappers_warn_but_work(self, engine):
        service = QueryService(engine)
        query = SQuery(CENTER, T, 600, 0.2)
        with pytest.warns(DeprecationWarning, match="query is deprecated"):
            via_service = service.query(query)
        direct = ReachabilityClient(service).send(
            Request(query, QueryOptions(algorithm="sqmb_tbs"))
        )
        assert via_service.segments == direct.segments
        with pytest.warns(DeprecationWarning):
            service.s_query(query)
        with pytest.warns(DeprecationWarning):
            service.r_query(query)

    def test_run_batch_does_not_warn(self, engine):
        service = QueryService(engine)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = service.run_batch([SQuery(CENTER, T, 600, 0.2)])
        assert len(report.results) == 1


class TestAsClient:
    def test_idempotent(self, engine, client):
        assert as_client(client) is client
        assert as_client(engine).engine is engine

    def test_wraps_service(self, engine):
        service = QueryService(engine)
        wrapped = as_client(service)
        assert wrapped.service is service
        # The client shares the service-lifetime region cache.
        assert wrapped.service.region_cache is service.region_cache
