"""Smoke tests for the example scripts.

Each example is importable and its ``main`` runs end-to-end on a shrunken
dataset (monkeypatched config) so the suite stays fast while proving the
scripts are not rotting.
"""

import importlib
import sys
from pathlib import Path

import pytest

from repro.datasets.shenzhen_like import TEST_CONFIG

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name: str, monkeypatch, capsys, argv=None):
    module = importlib.import_module(name)
    monkeypatch.setattr(module, "DEMO_CONFIG", TEST_CONFIG, raising=True)
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    module.main()
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart", monkeypatch, capsys)
    assert "Prob-reachable region" in out
    assert "Cost comparison" in out
    assert "Regions identical" in out


def test_location_advertising(monkeypatch, capsys, tmp_path):
    out = run_example(
        "location_advertising", monkeypatch, capsys, argv=[str(tmp_path)]
    )
    assert "Reachable region at off-peak" in out
    assert "GeoJSON written" in out
    assert list(tmp_path.glob("*.geojson"))


def test_business_coverage(monkeypatch, capsys):
    out = run_example("business_coverage", monkeypatch, capsys)
    assert "Combined coverage" in out
    assert "MQMB+TBS" in out


def test_emergency_dispatch(monkeypatch, capsys):
    out = run_example("emergency_dispatch", monkeypatch, capsys)
    assert "Coverage by confidence level" in out
    assert "over the day" in out


def test_poi_recommendation(monkeypatch, capsys):
    out = run_example("poi_recommendation", monkeypatch, capsys)
    assert "Lunch recommendation" in out
