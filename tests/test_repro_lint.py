"""Tests for the repro-lint invariant checker suite (tools/repro_lint).

Each rule gets a minimal passing and failing fixture snippet, plus
framework-level coverage: inline suppressions, baseline round-trips,
the JSON report schema, and the CLI exit codes the CI gate relies on.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint.core import (
    apply_baseline,
    load_baseline,
    report_json,
    run_paths,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path: Path, source: str, name: str = "mod.py", select=None):
    """Write *source* into a scratch tree and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    _, findings = run_paths([str(tmp_path)], select=select)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# RL001 — lock discipline
# ---------------------------------------------------------------------------


class TestRL001LockDiscipline:
    GOOD = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded_by: _lock

            def bump(self):
                with self._lock:
                    self.value += 1

            # repro-lint: holds=_lock
            def _bump_locked(self):
                self.value += 1
    """

    BAD = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded_by: _lock

            def bump(self):
                self.value += 1
    """

    def test_guarded_access_under_with_passes(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD, select=["RL001"]) == []

    def test_unguarded_write_fails(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BAD, select=["RL001"])
        assert rules_of(findings) == ["RL001"]
        assert "guarded by self._lock" in findings[0].message
        assert "written" in findings[0].message

    def test_unguarded_read_fails(self, tmp_path):
        source = self.BAD.replace("self.value += 1", "return self.value")
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert rules_of(findings) == ["RL001"]
        assert "read" in findings[0].message

    def test_wrong_lock_fails(self, tmp_path):
        source = """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.value = 0  # guarded_by: _a

                def bump(self):
                    with self._b:
                        self.value += 1
        """
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert len(findings) == 1

    def test_holds_annotation_above_def(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD, select=["RL001"]) == []

    def test_multiline_declaration_comment(self, tmp_path):
        source = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries: OrderedDict[  # guarded_by: _lock
                        str, int
                    ] = OrderedDict()

                def size(self):
                    return len(self._entries)
        """
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert len(findings) == 1

    def test_suppression_comment_honored(self, tmp_path):
        source = self.BAD.replace(
            "self.value += 1",
            "self.value += 1  # repro-lint: disable=RL001",
        )
        assert lint_snippet(tmp_path, source, select=["RL001"]) == []


# ---------------------------------------------------------------------------
# RL002 — I/O-accounting contract
# ---------------------------------------------------------------------------


class TestRL002IoAccounting:
    def test_raw_read_outside_storage_fails(self, tmp_path):
        source = """
            def peek(disk, page_id):
                return disk.read_page(page_id)
        """
        findings = lint_snippet(tmp_path, source, name="core/peek.py", select=["RL002"])
        assert rules_of(findings) == ["RL002"]

    def test_buffer_attribute_outside_storage_fails(self, tmp_path):
        source = """
            def raw(disk):
                return bytes(disk._buf)
        """
        findings = lint_snippet(tmp_path, source, name="core/raw.py", select=["RL002"])
        assert rules_of(findings) == ["RL002"]

    def test_storage_paths_exempt(self, tmp_path):
        source = """
            def charge(disk, page_ids):
                disk.charge_reads(page_ids)
                return disk._buf
        """
        findings = lint_snippet(
            tmp_path, source, name="storage/inside.py", select=["RL002"]
        )
        assert findings == []

    def test_pool_and_store_access_passes(self, tmp_path):
        source = """
            def read(store, pool, pointer):
                return store.read(pointer, pool=pool)
        """
        findings = lint_snippet(tmp_path, source, name="core/ok.py", select=["RL002"])
        assert findings == []

    def test_suppression_on_statement_first_line(self, tmp_path):
        source = """
            def decode(disk, pointer):
                # repro-lint: disable=RL002
                return decode_bytes(
                    disk.extent_bytes(
                        pointer.first_page, pointer.offset, pointer.length
                    )
                )
        """
        findings = lint_snippet(tmp_path, source, name="core/dec.py", select=["RL002"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL003 — spawn safety
# ---------------------------------------------------------------------------


class TestRL003SpawnSafety:
    def test_plain_payload_passes(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ShardPayload:
                shard_id: int
                pages: bytes
                used: tuple
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert findings == []

    def test_lock_field_fails(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                shard_id: int
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert "Lock" in findings[0].message

    def test_engine_backref_fails(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                engine: "ReachabilityEngine"
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]

    def test_unannotated_field_fails(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                shard_id: int
                DEFAULT_SLACK = 6
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert "unannotated" in findings[0].message

    def test_transitive_walk_flags_nested_dataclass(self, tmp_path):
        source = """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class Inner:
                callback: Callable

            @dataclass
            class ShardPayload:
                inner: Inner
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert any("reached via" in f.message for f in findings)

    def test_payload_marker_comment(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            # repro-lint: payload
            @dataclass
            class WorkOrder:
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/orders.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]

    def test_outside_serving_ignored(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            @dataclass
            class NotAPayload:
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="core/stuff.py", select=["RL003"]
        )
        assert findings == []

    def test_real_shard_payload_is_spawn_safe(self):
        _, findings = run_paths(
            [str(REPO_ROOT / "src" / "repro" / "serving")], select=["RL003"]
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL004 — registry/router completeness
# ---------------------------------------------------------------------------


class TestRL004RegistryCompleteness:
    REGISTRY = """
        def register_executor(kind, name):
            def wrap(fn):
                return fn
            return wrap

        @register_executor("s", "sqmb_tbs")
        def run_s(q):
            return None

        @register_executor("m", "mqmb_tbs")
        def run_m(q):
            return None
    """

    def test_router_literal_resolves(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            textwrap.dedent(
                """
                def route(decide):
                    return decide("sqmb_tbs", "paper-s", "default")
                """
            )
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert findings == []

    def test_router_unknown_literal_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            textwrap.dedent(
                """
                def route(decide):
                    return decide("sqmb_tbs_fast", "paper-s", "oops")
                """
            )
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "sqmb_tbs_fast" in findings[0].message

    def test_executor_module_without_registration_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "core" / "executors" / "dead.py").write_text(
            "def helper():\n    return 1\n"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "registers nothing" in findings[0].message

    def test_paper_algorithms_kind_mismatch_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            'PAPER_ALGORITHMS = {"r": "mqmb_tbs"}\n'
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "not registered for that kind" in findings[0].message

    def test_real_tree_is_complete(self):
        _, findings = run_paths([str(REPO_ROOT / "src")], select=["RL004"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL005 — deprecation firewall
# ---------------------------------------------------------------------------


class TestRL005DeprecationFirewall:
    def test_shim_call_fails(self, tmp_path):
        source = """
            def ask(engine):
                return engine.s_query(1, 0.0, 60.0, 0.5)
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]
        assert ".s_query()" in findings[0].message

    def test_service_query_call_fails(self, tmp_path):
        source = """
            def ask(service, request):
                return service.query(request)
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]

    def test_execute_passes(self, tmp_path):
        source = """
            def ask(service, request):
                return service.execute(request)
        """
        assert lint_snippet(tmp_path, source, select=["RL005"]) == []

    def test_all_export_of_undefined_name_fails(self, tmp_path):
        source = """
            __all__ = ["missing"]
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]
        assert "missing" in findings[0].message

    def test_public_def_missing_from_all_warns(self, tmp_path):
        source = """
            __all__ = ["listed"]

            def listed():
                return 1

            def unlisted():
                return 2
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "unlisted" in findings[0].message

    def test_consistent_all_passes(self, tmp_path):
        source = """
            __all__ = ["listed"]

            def listed():
                return 1

            def _private():
                return 2
        """
        assert lint_snippet(tmp_path, source, select=["RL005"]) == []


# ---------------------------------------------------------------------------
# Framework: baseline, JSON schema, CLI exit codes
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_swallows_known_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL001"])
        assert findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_baseline_is_line_independent(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, before = run_paths([str(tmp_path)], select=["RL001"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, before)
        # Shift every line down: same finding, different line number.
        target.write_text(
            "# a leading comment\n\n"
            + textwrap.dedent(TestRL001LockDiscipline.BAD),
            encoding="utf-8",
        )
        _, after = run_paths([str(tmp_path)], select=["RL001"])
        assert after and after[0].line != before[0].line
        assert apply_baseline(after, load_baseline(baseline_path)) == []

    def test_new_finding_not_covered(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL001"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        # Add a second, different violation.
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD).replace(
                "def bump(self):",
                "def peek(self):\n        return self.value\n\n    def bump(self):",
            ),
            encoding="utf-8",
        )
        _, after = run_paths([str(tmp_path)], select=["RL001"])
        fresh = apply_baseline(after, load_baseline(baseline_path))
        assert len(fresh) == 1
        assert "peek" in fresh[0].message

    def test_committed_baseline_entries_all_justified(self):
        """The committed baseline must stay empty or carry a justification
        for every grandfathered entry."""
        baseline_path = REPO_ROOT / "tools" / "repro_lint" / "baseline.json"
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        for item in data.get("findings", []):
            assert item.get("justification"), (
                f"baseline entry without justification: {item}"
            )


class TestJsonReport:
    def test_schema_snapshot(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        project, findings = run_paths([str(tmp_path)], select=["RL001"])
        report = report_json(project, findings)
        assert sorted(report) == ["files_scanned", "findings", "summary", "version"]
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        (finding,) = report["findings"]
        assert sorted(finding) == [
            "col",
            "line",
            "message",
            "path",
            "rule",
            "severity",
        ]
        assert finding["rule"] == "RL001"
        assert finding["severity"] == "error"
        summary = report["summary"]
        assert summary["total"] == 1
        assert summary["errors"] == 1
        assert summary["warnings"] == 0
        assert summary["by_rule"] == {"RL001": 1}

    def test_clean_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        project, findings = run_paths([str(tmp_path)])
        report = report_json(project, findings)
        assert report["findings"] == []
        assert report["summary"]["total"] == 0


class TestCliExitCodes:
    def run_cli(self, *args: str):
        return subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violation_exits_nonzero(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        result = self.run_cli(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "RL001" in result.stdout

    def test_report_only_exits_zero(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        result = self.run_cli(str(tmp_path), "--no-baseline", "--report-only")
        assert result.returncode == 0
        assert "RL001" in result.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path), "--select", "RL999")
        assert result.returncode == 2

    def test_syntax_error_exits_nonzero(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "RL000" in result.stdout

    def test_json_output_parses(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        out_file = tmp_path / "report.json"
        result = self.run_cli(
            str(tmp_path), "--no-baseline", "--format", "json", "--out", str(out_file)
        )
        assert result.returncode == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload == json.loads(result.stdout)
        assert payload["summary"]["by_rule"] == {"RL001": 1}

    def test_src_tree_is_clean(self):
        """The acceptance gate: `python -m tools.repro_lint src/` exits 0."""
        result = self.run_cli("src/")
        assert result.returncode == 0, result.stdout + result.stderr


class TestReintroducedViolationsFailGate:
    """Acceptance criterion: deliberately re-introducing a violation of
    each rule against a copy of the real tree makes the lint exit
    non-zero."""

    @pytest.fixture()
    def src_copy(self, tmp_path):
        import shutil

        dest = tmp_path / "src"
        shutil.copytree(REPO_ROOT / "src", dest)
        return dest

    def lint(self, dest):
        _, findings = run_paths([str(dest)])
        return findings

    def test_rl001_unlocked_counter(self, src_copy):
        disk = src_copy / "repro" / "storage" / "disk.py"
        text = disk.read_text(encoding="utf-8")
        text = text.replace(
            "def allocate(self, count: int = 1) -> int:",
            "def allocate(self, count: int = 1) -> int:\n"
            "        self.stats.page_reads += 0\n",
            1,
        )
        disk.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL001" for f in self.lint(src_copy))

    def test_rl002_raw_disk_read(self, src_copy):
        engine = src_copy / "repro" / "core" / "engine.py"
        text = engine.read_text(encoding="utf-8")
        engine.write_text(
            text + "\n\ndef _peek(disk, page_id):\n    return disk.read_page(page_id)\n",
            encoding="utf-8",
        )
        assert any(f.rule == "RL002" for f in self.lint(src_copy))

    def test_rl003_lock_in_payload(self, src_copy):
        partition = src_copy / "repro" / "serving" / "partition.py"
        text = partition.read_text(encoding="utf-8")
        text = text.replace(
            "class ShardPayload:",
            'class ShardPayload:\n    tail_lock: "threading.Lock"',
            1,
        )
        partition.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL003" for f in self.lint(src_copy))

    def test_rl004_unregistered_route(self, src_copy):
        router = src_copy / "repro" / "api" / "router.py"
        text = router.read_text(encoding="utf-8")
        text = text.replace('"sqmb_tbs"', '"sqmb_tbs_fast"', 1)
        router.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL004" for f in self.lint(src_copy))

    def test_rl005_internal_shim_call(self, src_copy):
        cli = src_copy / "repro" / "cli.py"
        text = cli.read_text(encoding="utf-8")
        cli.write_text(
            text + "\n\ndef _legacy(engine):\n    return engine.s_query(0, 0.0, 60.0, 0.5)\n",
            encoding="utf-8",
        )
        assert any(f.rule == "RL005" for f in self.lint(src_copy))

    def test_rl006_abba_lock_inversion(self, src_copy):
        # The real hierarchy has PageStore._tail_lock -> _PoolShard.lock;
        # a helper taking them in the opposite order closes the cycle.
        store = src_copy / "repro" / "storage" / "pagestore.py"
        text = store.read_text(encoding="utf-8")
        store.write_text(
            text
            + "\n\ndef _abba_probe(shard, store):\n"
            + "    with shard.lock:\n"
            + "        with store._tail_lock:\n"
            + "            pass\n",
            encoding="utf-8",
        )
        findings = [f for f in self.lint(src_copy) if f.rule == "RL006"]
        assert findings and any("ABBA" in f.message for f in findings)

    def test_rl007_uncharged_read_path(self, src_copy):
        # Give an executor entry point a direct raw read that bypasses
        # the BufferPool/PageStore charging chokepoints.
        executor = src_copy / "repro" / "core" / "executors" / "sqmb_tbs.py"
        text = executor.read_text(encoding="utf-8")
        text = text.replace(
            "    st = ctx.st_index()\n",
            "    st = ctx.st_index()\n"
            "    ctx.database.disk.read_page(0)\n",
            1,
        )
        executor.write_text(text, encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL007"]
        assert findings and any("uncharged disk-read path" in f.message for f in findings)

    def test_rl008_unrendered_cost_field(self, src_copy):
        query = src_copy / "repro" / "core" / "query.py"
        text = query.read_text(encoding="utf-8")
        text = text.replace(
            "    pool_lock_shards: int = 0\n",
            "    pool_lock_shards: int = 0\n    phantom_counter: int = 0\n",
            1,
        )
        query.write_text(text, encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL008"]
        messages = " | ".join(f.message for f in findings)
        assert "phantom_counter" in messages
        assert "never rendered" in messages

    def test_rl009_unhandled_protocol_message(self, src_copy):
        protocol = src_copy / "repro" / "serving" / "protocol.py"
        protocol.write_text(
            protocol.read_text(encoding="utf-8") + '\nMSG_PING = "ping"\n',
            encoding="utf-8",
        )
        dispatcher = src_copy / "repro" / "serving" / "dispatcher.py"
        dispatcher.write_text(
            dispatcher.read_text(encoding="utf-8")
            + "\n\ndef _ping(conn):\n"
            + "    from repro.serving.protocol import MSG_PING\n"
            + "    conn.send((MSG_PING, None))\n",
            encoding="utf-8",
        )
        findings = [f for f in self.lint(src_copy) if f.rule == "RL009"]
        assert findings and any(
            "MSG_PING" in f.message and "never handled in the worker" in f.message
            for f in findings
        )

    def test_rl010_unguarded_recv_on_gather_path(self, src_copy):
        # Acceptance criterion: re-introducing a bare conn.recv() on the
        # supervised gather path (bypassing _poll_workers) fails the gate.
        dispatcher = src_copy / "repro" / "serving" / "dispatcher.py"
        text = dispatcher.read_text(encoding="utf-8")
        needle = "            events = self._poll_workers(sorted(outstanding), timeout_s)\n"
        assert needle in text
        text = text.replace(
            needle,
            "            frame = self._workers[0].conn.recv()\n" + needle,
            1,
        )
        dispatcher.write_text(text, encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL010"]
        assert findings and any(
            "unbounded blocking wait" in f.message
            and "_gather" in f.message
            for f in findings
        )

    def test_rl011_commit_bypasses_journal_append(self, src_copy):
        # Acceptance criterion: making commit write the journal with a
        # bare open(..., "ab") instead of the fsynced append fails the
        # gate — the torn-write window the tier exists to close.
        filedisk = src_copy / "repro" / "storage" / "backends" / "filedisk.py"
        text = filedisk.read_text(encoding="utf-8")
        needle = "            self._journal_append_locked(payload)\n"
        assert needle in text
        text = text.replace(
            needle,
            '            with open(self._file("log"), "ab") as raw:\n'
            "                raw.write(payload)\n",
            1,
        )
        filedisk.write_text(text, encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL011"]
        assert findings and any(
            "unsafe durable-write path" in f.message
            and "FileBackedDisk.commit" in f.message
            for f in findings
        )

    def test_rl011_save_path_raw_write(self, src_copy):
        # Routing one of save_store's bundle files around atomic_replace
        # (write_bytes straight to the target path) fails the gate.
        persist = src_copy / "repro" / "io" / "persist.py"
        text = persist.read_text(encoding="utf-8")
        needle = 'atomic_replace(\n        directory / "network.json",'
        assert needle in text
        text = text.replace(
            needle,
            '_raw_write(\n        directory / "network.json",',
            1,
        )
        text += "\n\ndef _raw_write(path, data):\n    path.write_bytes(data)\n"
        persist.write_text(text, encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL011"]
        assert findings and any(
            "unsafe durable-write path" in f.message
            and "save_store" in f.message
            for f in findings
        )

    def test_rl011_barrier_annotation_is_load_bearing(self, src_copy):
        # Stripping the durable-barrier audit mark off atomic_replace
        # exposes its internal os.write/os.open on every save path.
        atomic = src_copy / "repro" / "storage" / "backends" / "atomic.py"
        text = atomic.read_text(encoding="utf-8")
        needle = "# repro-lint: durable-barrier\n"
        assert needle in text
        atomic.write_text(text.replace(needle, "", 1), encoding="utf-8")
        findings = [f for f in self.lint(src_copy) if f.rule == "RL011"]
        assert findings and any("atomic_replace" in f.message for f in findings)


class TestLockGraphCli:
    """--write-lock-graph / --check-lock-graph: the committed-artifact
    drift gate CI runs on every push."""

    def run_cli(self, *args: str, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def test_committed_graph_matches_fresh_extraction(self):
        result = self.run_cli(
            "src/", "--check-lock-graph", "tools/repro_lint/lock_order.json"
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_committed_graph_is_cycle_free(self):
        data = json.loads(
            (REPO_ROOT / "tools" / "repro_lint" / "lock_order.json").read_text(
                encoding="utf-8"
            )
        )
        adjacency = {}
        for edge in data["edges"]:
            adjacency.setdefault(edge["from"], set()).add(edge["to"])

        seen, stack = set(), set()

        def dfs(node):
            if node in stack:
                return True
            if node in seen:
                return False
            seen.add(node)
            stack.add(node)
            hit = any(dfs(nxt) for nxt in adjacency.get(node, ()))
            stack.discard(node)
            return hit

        assert not any(dfs(lock["name"]) for lock in data["locks"])

    def test_write_then_check_round_trips(self, tmp_path):
        out = tmp_path / "lock_order.json"
        result = self.run_cli("src/", "--write-lock-graph", str(out))
        assert result.returncode == 0, result.stdout + result.stderr
        check = self.run_cli("src/", "--check-lock-graph", str(out))
        assert check.returncode == 0, check.stdout + check.stderr

    def test_check_diverging_graph_fails(self, tmp_path):
        out = tmp_path / "lock_order.json"
        assert self.run_cli("src/", "--write-lock-graph", str(out)).returncode == 0
        data = json.loads(out.read_text(encoding="utf-8"))
        data["locks"].append({"kind": "lock", "name": "repro.fake.Ghost._lock"})
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        result = self.run_cli("src/", "--check-lock-graph", str(out))
        assert result.returncode == 1
        assert "diverge" in (result.stdout + result.stderr)

    def test_check_missing_file_fails(self, tmp_path):
        result = self.run_cli(
            "src/", "--check-lock-graph", str(tmp_path / "absent.json")
        )
        assert result.returncode == 1

    def test_write_exits_nonzero_on_cycle(self, tmp_path):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text(
            textwrap.dedent(
                """
                import threading

                class Pair:
                    def __init__(self):
                        self.la = threading.Lock()
                        self.lb = threading.Lock()

                    def ab(self):
                        with self.la:
                            with self.lb:
                                pass

                    def ba(self):
                        with self.lb:
                            with self.la:
                                pass
                """
            ),
            encoding="utf-8",
        )
        out = tmp_path / "lock_order.json"
        result = self.run_cli(str(tree), "--write-lock-graph", str(out))
        assert result.returncode == 1
        assert out.exists()


# ---------------------------------------------------------------------------
# RL006 — interprocedural lock order
# ---------------------------------------------------------------------------


def lint_tree(tmp_path: Path, files, select=None):
    """Write a multi-file scratch tree and lint it."""
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    _, findings = run_paths([str(tmp_path)], select=select)
    return findings


class TestRL006LockOrder:
    def test_consistent_order_passes(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                def ab(self):
                    with self.la:
                        with self.lb:
                            pass

                def also_ab(self):
                    with self.la:
                        with self.lb:
                            pass
        """
        assert lint_snippet(tmp_path, source, select=["RL006"]) == []

    def test_nested_abba_cycle_fails(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                def ab(self):
                    with self.la:
                        with self.lb:
                            pass

                def ba(self):
                    with self.lb:
                        with self.la:
                            pass
        """
        findings = lint_snippet(tmp_path, source, select=["RL006"])
        assert rules_of(findings) == ["RL006"]
        assert any("ABBA" in f.message for f in findings)

    def test_interprocedural_abba_cycle_fails(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                def ab(self):
                    with self.la:
                        self._take_b()

                def _take_b(self):
                    with self.lb:
                        pass

                def ba(self):
                    with self.lb:
                        self._take_a()

                def _take_a(self):
                    with self.la:
                        pass
        """
        findings = lint_snippet(tmp_path, source, select=["RL006"])
        assert any("ABBA" in f.message for f in findings)

    def test_plain_lock_reacquire_is_self_deadlock(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self.lock = threading.Lock()

                def outer(self):
                    with self.lock:
                        self._inner()

                def _inner(self):
                    with self.lock:
                        pass
        """
        findings = lint_snippet(tmp_path, source, select=["RL006"])
        assert rules_of(findings) == ["RL006"]
        assert any("re-acquire" in f.message for f in findings)

    def test_rlock_reacquire_passes(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self.lock = threading.RLock()

                def outer(self):
                    with self.lock:
                        self._inner()

                def _inner(self):
                    with self.lock:
                        pass
        """
        assert lint_snippet(tmp_path, source, select=["RL006"]) == []

    def test_unresolvable_lock_acquisition_fails(self, tmp_path):
        source = """
            class Worker:
                def run(self, ext):
                    with ext.some_lock:
                        pass
        """
        findings = lint_snippet(tmp_path, source, select=["RL006"])
        assert rules_of(findings) == ["RL006"]
        assert any("cannot resolve lock acquisition" in f.message for f in findings)

    def test_holds_annotation_contributes_edges(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                # repro-lint: holds=la
                def _b_under_a(self):
                    with self.lb:
                        pass

                def ba(self):
                    with self.lb:
                        with self.la:
                            pass
        """
        findings = lint_snippet(tmp_path, source, select=["RL006"])
        assert any("ABBA" in f.message for f in findings)


# ---------------------------------------------------------------------------
# RL007 — I/O-accounting dataflow
# ---------------------------------------------------------------------------


class TestRL007AccountingFlow:
    REGISTRY = textwrap.dedent(
        """
        def register_executor(kind, name):
            def deco(fn):
                return fn
            return deco
        """
    )

    def snippet(self, tmp_path, body):
        return lint_snippet(
            tmp_path, self.REGISTRY + textwrap.dedent(body), select=["RL007"]
        )

    def test_direct_raw_read_in_executor_fails(self, tmp_path):
        findings = self.snippet(tmp_path, """
            @register_executor("s", "algo_tbs")
            def execute(ctx):
                return ctx.disk.read_page(0)
        """)
        assert rules_of(findings) == ["RL007"]
        assert "uncharged disk-read path" in findings[0].message

    def test_interprocedural_raw_read_fails_with_chain(self, tmp_path):
        findings = self.snippet(tmp_path, """
            @register_executor("s", "algo_tbs")
            def execute(ctx):
                return _fetch(ctx)

            def _fetch(ctx):
                return ctx.disk.read_page(0)
        """)
        assert rules_of(findings) == ["RL007"]
        assert "execute -> " in findings[0].message
        assert "._fetch" in findings[0].message

    def test_charging_barrier_passes(self, tmp_path):
        findings = self.snippet(tmp_path, """
            @register_executor("s", "algo_tbs")
            def execute(ctx):
                return _load(ctx)

            def _load(ctx):
                pages = ctx.pool.get_pages([0, 1])
                return ctx.disk.extent_bytes(0, len(pages))
        """)
        assert findings == []

    def test_charged_annotation_is_a_barrier(self, tmp_path):
        findings = self.snippet(tmp_path, """
            @register_executor("s", "algo_tbs")
            def execute(ctx):
                return _decode(ctx)

            # repro-lint: charged
            def _decode(ctx):
                return ctx.disk.extent_bytes(0, 2)
        """)
        assert findings == []

    def test_no_registry_is_a_noop(self, tmp_path):
        source = """
            def peek(disk):
                return disk.read_page(0)
        """
        assert lint_snippet(tmp_path, source, select=["RL007"]) == []


# ---------------------------------------------------------------------------
# RL008 — QueryCost counter drift
# ---------------------------------------------------------------------------


class TestRL008CounterDrift:
    QUERY = textwrap.dedent(
        """
        from dataclasses import dataclass

        @dataclass
        class QueryCost:
            page_reads: int = 0
            expansions: int = 0
        """
    )
    SERVICE = textwrap.dedent(
        """
        class BatchReport:
            def __init__(self, results):
                self.results = results

            @property
            def page_reads(self):
                return sum(r.cost.page_reads for r in self.results)

            @property
            def expansions(self):
                return sum(r.cost.expansions for r in self.results)
        """
    )
    DOCS = textwrap.dedent(
        """
        # API

        `QueryCost` fields:

        - `page_reads` — pages charged against the simulated disk.
        - `expansions` — segments expanded by the search.

        ## Next section
        """
    )

    def write_docs(self, tmp_path, text):
        docs = tmp_path / "docs"
        docs.mkdir(exist_ok=True)
        (docs / "api.md").write_text(text, encoding="utf-8")

    def test_consistent_surfaces_pass(self, tmp_path):
        self.write_docs(tmp_path, self.DOCS)
        findings = lint_tree(
            tmp_path,
            {"core/query.py": self.QUERY, "core/service.py": self.SERVICE},
            select=["RL008"],
        )
        assert findings == []

    def test_unaggregated_unrendered_undocumented_field_fails(self, tmp_path):
        self.write_docs(tmp_path, self.DOCS)
        query = self.QUERY + "    dead_counter: int = 0\n"
        findings = lint_tree(
            tmp_path,
            {"core/query.py": query, "core/service.py": self.SERVICE},
            select=["RL008"],
        )
        messages = " | ".join(f.message for f in findings)
        assert "dead_counter is not aggregated by BatchReport" in messages
        assert "dead_counter is never rendered" in messages
        assert "dead_counter is undocumented" in messages

    def test_stale_doc_bullet_fails(self, tmp_path):
        self.write_docs(
            tmp_path,
            self.DOCS.replace(
                "- `expansions` — segments expanded by the search.",
                "- `expansions` — segments expanded by the search.\n"
                "- `ghost_counter` — removed long ago.",
            ),
        )
        findings = lint_tree(
            tmp_path,
            {"core/query.py": self.QUERY, "core/service.py": self.SERVICE},
            select=["RL008"],
        )
        assert any("`ghost_counter` which is not a QueryCost field" in f.message for f in findings)

    def test_no_query_cost_is_a_noop(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": "x = 1\n"}, select=["RL008"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL009 — serving protocol exhaustiveness
# ---------------------------------------------------------------------------


class TestRL009Protocol:
    PROTOCOL = textwrap.dedent(
        """
        MSG_RUN = "run"
        MSG_OK = "ok"
        MSG_ERROR = "error"
        MSG_SHUTDOWN = "shutdown"
        """
    )
    WORKER = textwrap.dedent(
        """
        from serving.protocol import MSG_ERROR, MSG_OK, MSG_RUN, MSG_SHUTDOWN

        def loop(conn):
            while True:
                kind, payload = conn.recv()
                if kind == MSG_SHUTDOWN:
                    break
                if kind == MSG_RUN:
                    try:
                        conn.send((MSG_OK, payload))
                    except Exception as exc:
                        conn.send((MSG_ERROR, str(exc)))
                else:
                    conn.send((MSG_ERROR, "unknown kind"))
        """
    )
    DISPATCHER = textwrap.dedent(
        """
        from serving.protocol import MSG_ERROR, MSG_OK, MSG_RUN, MSG_SHUTDOWN

        def run(conn, req):
            conn.send((MSG_RUN, req))
            kind, payload = conn.recv()
            if kind == MSG_ERROR:
                raise RuntimeError(payload)
            if kind != MSG_OK:
                raise RuntimeError("bad frame")
            return payload

        def stop(conn):
            conn.send((MSG_SHUTDOWN, None))
        """
    )

    def tree(self, protocol=None, worker=None, dispatcher=None):
        return {
            "serving/protocol.py": protocol or self.PROTOCOL,
            "serving/worker.py": worker or self.WORKER,
            "serving/dispatcher.py": dispatcher or self.DISPATCHER,
        }

    def test_complete_protocol_passes(self, tmp_path):
        assert lint_tree(tmp_path, self.tree(), select=["RL009"]) == []

    def test_dead_message_kind_fails(self, tmp_path):
        protocol = self.PROTOCOL + 'MSG_PING = "ping"\n'
        findings = lint_tree(tmp_path, self.tree(protocol=protocol), select=["RL009"])
        assert any("MSG_PING is never sent" in f.message for f in findings)

    def test_unhandled_message_fails(self, tmp_path):
        protocol = self.PROTOCOL + 'MSG_PING = "ping"\n'
        dispatcher = self.DISPATCHER + textwrap.dedent(
            """
            def ping(conn):
                from serving.protocol import MSG_PING
                conn.send((MSG_PING, None))
            """
        )
        findings = lint_tree(
            tmp_path,
            self.tree(protocol=protocol, dispatcher=dispatcher),
            select=["RL009"],
        )
        assert any(
            "MSG_PING (sent by the dispatcher) is never handled in the worker" in f.message
            for f in findings
        )

    def test_missing_unknown_kind_fallback_fails(self, tmp_path):
        worker = """
            from serving.protocol import MSG_ERROR, MSG_OK, MSG_RUN, MSG_SHUTDOWN

            def loop(conn):
                while True:
                    kind, payload = conn.recv()
                    if kind == MSG_SHUTDOWN:
                        break
                    if kind == MSG_RUN:
                        try:
                            conn.send((MSG_OK, payload))
                        except Exception as exc:
                            conn.send((MSG_ERROR, str(exc)))
        """
        findings = lint_tree(tmp_path, self.tree(worker=worker), select=["RL009"])
        assert any("no unknown-message fallback" in f.message for f in findings)

    def test_missing_error_path_fails(self, tmp_path):
        worker = """
            from serving.protocol import MSG_ERROR, MSG_OK, MSG_RUN, MSG_SHUTDOWN

            def loop(conn):
                while True:
                    kind, payload = conn.recv()
                    if kind == MSG_SHUTDOWN:
                        break
                    if kind == MSG_RUN:
                        conn.send((MSG_OK, payload))
                    else:
                        conn.send((MSG_ERROR, "unknown kind"))
        """
        findings = lint_tree(tmp_path, self.tree(worker=worker), select=["RL009"])
        assert any("no error path" in f.message for f in findings)

    def test_both_sides_sending_fails(self, tmp_path):
        worker = self.WORKER + textwrap.dedent(
            """
            def renegade(conn):
                conn.send((MSG_RUN, None))
            """
        )
        findings = lint_tree(tmp_path, self.tree(worker=worker), select=["RL009"])
        assert any("sent by both sides" in f.message for f in findings)

    def test_no_protocol_module_is_a_noop(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": "x = 1\n"}, select=["RL009"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL010 — blocking-recv discipline
# ---------------------------------------------------------------------------


class TestRL010RecvDeadline:
    GOOD = textwrap.dedent(
        """
        from multiprocessing import connection as mp_connection

        class ShardedEngine:
            def run_batch(self, requests):
                outstanding = {0: "attempt"}
                return self._gather(outstanding)

            def _gather(self, outstanding):
                replies = []
                while outstanding:
                    for conn, frame in self._poll_workers(outstanding, 0.5):
                        replies.append(frame)
                        outstanding.popitem()
                return replies

            # repro-lint: deadline-wait
            def _poll_workers(self, outstanding, timeout_s):
                ready = mp_connection.wait(list(outstanding), timeout_s)
                return [(conn, conn.recv()) for conn in ready]
        """
    )

    def test_guarded_gather_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path, self.GOOD, name="serving/dispatcher.py", select=["RL010"]
        )
        assert findings == []

    def test_direct_recv_on_gather_path_fails(self, tmp_path):
        bad = self.GOOD.replace(
            "            for conn, frame in self._poll_workers(outstanding, 0.5):\n"
            "                replies.append(frame)\n",
            "            for conn in list(outstanding):\n"
            "                replies.append(conn.recv())\n",
        )
        assert bad != self.GOOD
        findings = lint_snippet(
            tmp_path, bad, name="serving/dispatcher.py", select=["RL010"]
        )
        assert any(
            f.rule == "RL010"
            and "unbounded blocking wait" in f.message
            and "run_batch" in f.message  # the witness chain names the entry
            and "_gather" in f.message
            for f in findings
        )

    def test_recv_in_entry_point_itself_fails(self, tmp_path):
        bad = self.GOOD.replace(
            "        outstanding = {0: \"attempt\"}\n",
            "        outstanding = {0: \"attempt\"}\n"
            "        peek = self.conn.recv()\n",
        )
        assert bad != self.GOOD
        findings = lint_snippet(
            tmp_path, bad, name="serving/dispatcher.py", select=["RL010"]
        )
        assert any(
            f.rule == "RL010" and ".recv()" in f.message for f in findings
        )

    def test_wait_without_timeout_fails(self, tmp_path):
        # unbounded wait directly in a *non-barrier* function on the path
        bad = self.GOOD.replace(
            "            for conn, frame in self._poll_workers(outstanding, 0.5):\n"
            "                replies.append(frame)\n",
            "            for conn in mp_connection.wait(list(outstanding)):\n"
            "                replies.append(conn)\n",
        )
        assert bad != self.GOOD
        findings = lint_snippet(
            tmp_path, bad, name="serving/dispatcher.py", select=["RL010"]
        )
        assert any(
            f.rule == "RL010" and "without a timeout" in f.message
            for f in findings
        )

    def test_annotated_helper_is_a_barrier(self, tmp_path):
        # A custom audited helper (not named _poll_workers) is trusted
        # once annotated `# repro-lint: deadline-wait`.
        source = self.GOOD.replace("_poll_workers", "_bounded_poll")
        findings = lint_snippet(
            tmp_path, source, name="serving/dispatcher.py", select=["RL010"]
        )
        assert findings == []
        unannotated = source.replace(
            "# repro-lint: deadline-wait\n", "# just a helper\n"
        )
        assert unannotated != source
        findings = lint_snippet(
            tmp_path, unannotated, name="serving/dispatcher2.py", select=["RL010"]
        )
        assert any(f.rule == "RL010" for f in findings)

    def test_worker_recv_out_of_scope(self, tmp_path):
        # The worker loop's idle recv is a spawn target, not a callee of
        # run_batch: it must not be flagged.
        tree = {
            "serving/dispatcher.py": self.GOOD,
            "serving/worker.py": (
                """
                def shard_worker_main(conn):
                    while True:
                        message = conn.recv()
                        if message is None:
                            break
                """
            ),
        }
        assert lint_tree(tmp_path, tree, select=["RL010"]) == []

    def test_no_sharded_engine_is_a_noop(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def plain(conn):\n    return conn.recv()\n",
            select=["RL010"],
        )
        assert findings == []
