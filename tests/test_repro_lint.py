"""Tests for the repro-lint invariant checker suite (tools/repro_lint).

Each rule gets a minimal passing and failing fixture snippet, plus
framework-level coverage: inline suppressions, baseline round-trips,
the JSON report schema, and the CLI exit codes the CI gate relies on.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint.core import (
    apply_baseline,
    load_baseline,
    report_json,
    run_paths,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path: Path, source: str, name: str = "mod.py", select=None):
    """Write *source* into a scratch tree and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    _, findings = run_paths([str(tmp_path)], select=select)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# RL001 — lock discipline
# ---------------------------------------------------------------------------


class TestRL001LockDiscipline:
    GOOD = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded_by: _lock

            def bump(self):
                with self._lock:
                    self.value += 1

            # repro-lint: holds=_lock
            def _bump_locked(self):
                self.value += 1
    """

    BAD = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded_by: _lock

            def bump(self):
                self.value += 1
    """

    def test_guarded_access_under_with_passes(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD, select=["RL001"]) == []

    def test_unguarded_write_fails(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BAD, select=["RL001"])
        assert rules_of(findings) == ["RL001"]
        assert "guarded by self._lock" in findings[0].message
        assert "written" in findings[0].message

    def test_unguarded_read_fails(self, tmp_path):
        source = self.BAD.replace("self.value += 1", "return self.value")
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert rules_of(findings) == ["RL001"]
        assert "read" in findings[0].message

    def test_wrong_lock_fails(self, tmp_path):
        source = """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.value = 0  # guarded_by: _a

                def bump(self):
                    with self._b:
                        self.value += 1
        """
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert len(findings) == 1

    def test_holds_annotation_above_def(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD, select=["RL001"]) == []

    def test_multiline_declaration_comment(self, tmp_path):
        source = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries: OrderedDict[  # guarded_by: _lock
                        str, int
                    ] = OrderedDict()

                def size(self):
                    return len(self._entries)
        """
        findings = lint_snippet(tmp_path, source, select=["RL001"])
        assert len(findings) == 1

    def test_suppression_comment_honored(self, tmp_path):
        source = self.BAD.replace(
            "self.value += 1",
            "self.value += 1  # repro-lint: disable=RL001",
        )
        assert lint_snippet(tmp_path, source, select=["RL001"]) == []


# ---------------------------------------------------------------------------
# RL002 — I/O-accounting contract
# ---------------------------------------------------------------------------


class TestRL002IoAccounting:
    def test_raw_read_outside_storage_fails(self, tmp_path):
        source = """
            def peek(disk, page_id):
                return disk.read_page(page_id)
        """
        findings = lint_snippet(tmp_path, source, name="core/peek.py", select=["RL002"])
        assert rules_of(findings) == ["RL002"]

    def test_buffer_attribute_outside_storage_fails(self, tmp_path):
        source = """
            def raw(disk):
                return bytes(disk._buf)
        """
        findings = lint_snippet(tmp_path, source, name="core/raw.py", select=["RL002"])
        assert rules_of(findings) == ["RL002"]

    def test_storage_paths_exempt(self, tmp_path):
        source = """
            def charge(disk, page_ids):
                disk.charge_reads(page_ids)
                return disk._buf
        """
        findings = lint_snippet(
            tmp_path, source, name="storage/inside.py", select=["RL002"]
        )
        assert findings == []

    def test_pool_and_store_access_passes(self, tmp_path):
        source = """
            def read(store, pool, pointer):
                return store.read(pointer, pool=pool)
        """
        findings = lint_snippet(tmp_path, source, name="core/ok.py", select=["RL002"])
        assert findings == []

    def test_suppression_on_statement_first_line(self, tmp_path):
        source = """
            def decode(disk, pointer):
                # repro-lint: disable=RL002
                return decode_bytes(
                    disk.extent_bytes(
                        pointer.first_page, pointer.offset, pointer.length
                    )
                )
        """
        findings = lint_snippet(tmp_path, source, name="core/dec.py", select=["RL002"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL003 — spawn safety
# ---------------------------------------------------------------------------


class TestRL003SpawnSafety:
    def test_plain_payload_passes(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ShardPayload:
                shard_id: int
                pages: bytes
                used: tuple
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert findings == []

    def test_lock_field_fails(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                shard_id: int
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert "Lock" in findings[0].message

    def test_engine_backref_fails(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                engine: "ReachabilityEngine"
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]

    def test_unannotated_field_fails(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class ShardPayload:
                shard_id: int
                DEFAULT_SLACK = 6
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert "unannotated" in findings[0].message

    def test_transitive_walk_flags_nested_dataclass(self, tmp_path):
        source = """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class Inner:
                callback: Callable

            @dataclass
            class ShardPayload:
                inner: Inner
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/payload.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]
        assert any("reached via" in f.message for f in findings)

    def test_payload_marker_comment(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            # repro-lint: payload
            @dataclass
            class WorkOrder:
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="serving/orders.py", select=["RL003"]
        )
        assert rules_of(findings) == ["RL003"]

    def test_outside_serving_ignored(self, tmp_path):
        source = """
            import threading
            from dataclasses import dataclass

            @dataclass
            class NotAPayload:
                lock: threading.Lock
        """
        findings = lint_snippet(
            tmp_path, source, name="core/stuff.py", select=["RL003"]
        )
        assert findings == []

    def test_real_shard_payload_is_spawn_safe(self):
        _, findings = run_paths(
            [str(REPO_ROOT / "src" / "repro" / "serving")], select=["RL003"]
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL004 — registry/router completeness
# ---------------------------------------------------------------------------


class TestRL004RegistryCompleteness:
    REGISTRY = """
        def register_executor(kind, name):
            def wrap(fn):
                return fn
            return wrap

        @register_executor("s", "sqmb_tbs")
        def run_s(q):
            return None

        @register_executor("m", "mqmb_tbs")
        def run_m(q):
            return None
    """

    def test_router_literal_resolves(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            textwrap.dedent(
                """
                def route(decide):
                    return decide("sqmb_tbs", "paper-s", "default")
                """
            )
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert findings == []

    def test_router_unknown_literal_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            textwrap.dedent(
                """
                def route(decide):
                    return decide("sqmb_tbs_fast", "paper-s", "oops")
                """
            )
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "sqmb_tbs_fast" in findings[0].message

    def test_executor_module_without_registration_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "core" / "executors" / "dead.py").write_text(
            "def helper():\n    return 1\n"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "registers nothing" in findings[0].message

    def test_paper_algorithms_kind_mismatch_fails(self, tmp_path):
        (tmp_path / "core" / "executors").mkdir(parents=True)
        (tmp_path / "core" / "executors" / "reg.py").write_text(
            textwrap.dedent(self.REGISTRY)
        )
        (tmp_path / "api").mkdir()
        (tmp_path / "api" / "router.py").write_text(
            'PAPER_ALGORITHMS = {"r": "mqmb_tbs"}\n'
        )
        _, findings = run_paths([str(tmp_path)], select=["RL004"])
        assert rules_of(findings) == ["RL004"]
        assert "not registered for that kind" in findings[0].message

    def test_real_tree_is_complete(self):
        _, findings = run_paths([str(REPO_ROOT / "src")], select=["RL004"])
        assert findings == []


# ---------------------------------------------------------------------------
# RL005 — deprecation firewall
# ---------------------------------------------------------------------------


class TestRL005DeprecationFirewall:
    def test_shim_call_fails(self, tmp_path):
        source = """
            def ask(engine):
                return engine.s_query(1, 0.0, 60.0, 0.5)
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]
        assert ".s_query()" in findings[0].message

    def test_service_query_call_fails(self, tmp_path):
        source = """
            def ask(service, request):
                return service.query(request)
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]

    def test_execute_passes(self, tmp_path):
        source = """
            def ask(service, request):
                return service.execute(request)
        """
        assert lint_snippet(tmp_path, source, select=["RL005"]) == []

    def test_all_export_of_undefined_name_fails(self, tmp_path):
        source = """
            __all__ = ["missing"]
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert rules_of(findings) == ["RL005"]
        assert "missing" in findings[0].message

    def test_public_def_missing_from_all_warns(self, tmp_path):
        source = """
            __all__ = ["listed"]

            def listed():
                return 1

            def unlisted():
                return 2
        """
        findings = lint_snippet(tmp_path, source, select=["RL005"])
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "unlisted" in findings[0].message

    def test_consistent_all_passes(self, tmp_path):
        source = """
            __all__ = ["listed"]

            def listed():
                return 1

            def _private():
                return 2
        """
        assert lint_snippet(tmp_path, source, select=["RL005"]) == []


# ---------------------------------------------------------------------------
# Framework: baseline, JSON schema, CLI exit codes
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_swallows_known_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL001"])
        assert findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_baseline_is_line_independent(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, before = run_paths([str(tmp_path)], select=["RL001"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, before)
        # Shift every line down: same finding, different line number.
        target.write_text(
            "# a leading comment\n\n"
            + textwrap.dedent(TestRL001LockDiscipline.BAD),
            encoding="utf-8",
        )
        _, after = run_paths([str(tmp_path)], select=["RL001"])
        assert after and after[0].line != before[0].line
        assert apply_baseline(after, load_baseline(baseline_path)) == []

    def test_new_finding_not_covered(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        _, findings = run_paths([str(tmp_path)], select=["RL001"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        # Add a second, different violation.
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD).replace(
                "def bump(self):",
                "def peek(self):\n        return self.value\n\n    def bump(self):",
            ),
            encoding="utf-8",
        )
        _, after = run_paths([str(tmp_path)], select=["RL001"])
        fresh = apply_baseline(after, load_baseline(baseline_path))
        assert len(fresh) == 1
        assert "peek" in fresh[0].message

    def test_committed_baseline_entries_all_justified(self):
        """The committed baseline must stay empty or carry a justification
        for every grandfathered entry."""
        baseline_path = REPO_ROOT / "tools" / "repro_lint" / "baseline.json"
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        for item in data.get("findings", []):
            assert item.get("justification"), (
                f"baseline entry without justification: {item}"
            )


class TestJsonReport:
    def test_schema_snapshot(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        project, findings = run_paths([str(tmp_path)], select=["RL001"])
        report = report_json(project, findings)
        assert sorted(report) == ["files_scanned", "findings", "summary", "version"]
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        (finding,) = report["findings"]
        assert sorted(finding) == [
            "col",
            "line",
            "message",
            "path",
            "rule",
            "severity",
        ]
        assert finding["rule"] == "RL001"
        assert finding["severity"] == "error"
        summary = report["summary"]
        assert summary["total"] == 1
        assert summary["errors"] == 1
        assert summary["warnings"] == 0
        assert summary["by_rule"] == {"RL001": 1}

    def test_clean_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        project, findings = run_paths([str(tmp_path)])
        report = report_json(project, findings)
        assert report["findings"] == []
        assert report["summary"]["total"] == 0


class TestCliExitCodes:
    def run_cli(self, *args: str):
        return subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violation_exits_nonzero(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        result = self.run_cli(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "RL001" in result.stdout

    def test_report_only_exits_zero(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        result = self.run_cli(str(tmp_path), "--no-baseline", "--report-only")
        assert result.returncode == 0
        assert "RL001" in result.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path), "--select", "RL999")
        assert result.returncode == 2

    def test_syntax_error_exits_nonzero(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        result = self.run_cli(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "RL000" in result.stdout

    def test_json_output_parses(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(TestRL001LockDiscipline.BAD), encoding="utf-8"
        )
        out_file = tmp_path / "report.json"
        result = self.run_cli(
            str(tmp_path), "--no-baseline", "--format", "json", "--out", str(out_file)
        )
        assert result.returncode == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload == json.loads(result.stdout)
        assert payload["summary"]["by_rule"] == {"RL001": 1}

    def test_src_tree_is_clean(self):
        """The acceptance gate: `python -m tools.repro_lint src/` exits 0."""
        result = self.run_cli("src/")
        assert result.returncode == 0, result.stdout + result.stderr


class TestReintroducedViolationsFailGate:
    """Acceptance criterion: deliberately re-introducing a violation of
    each rule against a copy of the real tree makes the lint exit
    non-zero."""

    @pytest.fixture()
    def src_copy(self, tmp_path):
        import shutil

        dest = tmp_path / "src"
        shutil.copytree(REPO_ROOT / "src", dest)
        return dest

    def lint(self, dest):
        _, findings = run_paths([str(dest)])
        return findings

    def test_rl001_unlocked_counter(self, src_copy):
        disk = src_copy / "repro" / "storage" / "disk.py"
        text = disk.read_text(encoding="utf-8")
        text = text.replace(
            "def allocate(self, count: int = 1) -> int:",
            "def allocate(self, count: int = 1) -> int:\n"
            "        self.stats.page_reads += 0\n",
            1,
        )
        disk.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL001" for f in self.lint(src_copy))

    def test_rl002_raw_disk_read(self, src_copy):
        engine = src_copy / "repro" / "core" / "engine.py"
        text = engine.read_text(encoding="utf-8")
        engine.write_text(
            text + "\n\ndef _peek(disk, page_id):\n    return disk.read_page(page_id)\n",
            encoding="utf-8",
        )
        assert any(f.rule == "RL002" for f in self.lint(src_copy))

    def test_rl003_lock_in_payload(self, src_copy):
        partition = src_copy / "repro" / "serving" / "partition.py"
        text = partition.read_text(encoding="utf-8")
        text = text.replace(
            "class ShardPayload:",
            'class ShardPayload:\n    tail_lock: "threading.Lock"',
            1,
        )
        partition.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL003" for f in self.lint(src_copy))

    def test_rl004_unregistered_route(self, src_copy):
        router = src_copy / "repro" / "api" / "router.py"
        text = router.read_text(encoding="utf-8")
        text = text.replace('"sqmb_tbs"', '"sqmb_tbs_fast"', 1)
        router.write_text(text, encoding="utf-8")
        assert any(f.rule == "RL004" for f in self.lint(src_copy))

    def test_rl005_internal_shim_call(self, src_copy):
        cli = src_copy / "repro" / "cli.py"
        text = cli.read_text(encoding="utf-8")
        cli.write_text(
            text + "\n\ndef _legacy(engine):\n    return engine.s_query(0, 0.0, 60.0, 0.5)\n",
            encoding="utf-8",
        )
        assert any(f.rule == "RL005" for f in self.lint(src_copy))
