"""Unit and property tests for the B+-tree temporal index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.btree import BPlusTree


class TestBasics:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) is None
        assert 5 not in tree
        assert list(tree.range(0, 100)) == []
        assert tree.floor(5) is None

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, i * 10)
        assert len(tree) == 20
        assert tree.get(7) == 70
        assert tree.get(100, default=-1) == -1
        assert 7 in tree and 100 not in tree

    def test_overwrite_does_not_grow(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = [5, 3, 9, 1, 7, 2, 8]
        for k in keys:
            tree.insert(k, str(k))
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestRange:
    def test_range_inclusive(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 10):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(20, 50)] == [20, 30, 40, 50]

    def test_range_empty_when_low_above_high(self):
        tree = BPlusTree(order=4)
        tree.insert(1, 1)
        assert list(tree.range(5, 2)) == []

    def test_range_spans_leaves(self):
        tree = BPlusTree(order=3)
        for i in range(50):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(10, 40)] == list(range(10, 41))


class TestFloor:
    def test_floor_exact(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 10):
            tree.insert(i, f"slot{i}")
        assert tree.floor(30) == (30, "slot30")

    def test_floor_between_keys(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 10):
            tree.insert(i, i)
        assert tree.floor(34) == (30, 30)

    def test_floor_below_min(self):
        tree = BPlusTree(order=4)
        tree.insert(10, "x")
        assert tree.floor(5) is None

    def test_floor_above_max(self):
        tree = BPlusTree(order=4)
        for i in range(0, 50, 10):
            tree.insert(i, i)
        assert tree.floor(1000) == (40, 40)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=400),
           st.integers(3, 16))
    def test_matches_dict_semantics(self, keys, order):
        tree = BPlusTree(order=order)
        reference = {}
        for key in keys:
            tree.insert(key, key * 2)
            reference[key] = key * 2
        tree.check_invariants()
        assert len(tree) == len(reference)
        assert list(tree.items()) == sorted(reference.items())
        for probe in keys[:20]:
            assert tree.get(probe) == reference[probe]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           st.integers(0, 1000), st.integers(0, 1000))
    def test_range_matches_filter(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        expected = sorted(k for k in set(keys) if low <= k <= high)
        assert [k for k, _ in tree.range(low, high)] == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           st.integers(-10, 1010))
    def test_floor_matches_max_leq(self, keys, probe):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        eligible = [k for k in set(keys) if k <= probe]
        found = tree.floor(probe)
        if eligible:
            assert found == (max(eligible), max(eligible))
        else:
            assert found is None

    def test_large_sequential_and_random(self):
        for order, count in ((3, 500), (32, 2000)):
            tree = BPlusTree(order=order)
            keys = list(range(count))
            random.Random(1).shuffle(keys)
            for key in keys:
                tree.insert(key, key)
            tree.check_invariants()
            assert list(tree.keys()) == list(range(count))
