"""Stateful property-based tests (hypothesis RuleBasedStateMachine).

The spatial index structures back every query the system answers, so they
get the strongest testing: stateful machines that interleave operations
and continuously compare against a trivially correct model.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.spatial.btree import BPlusTree
from repro.spatial.geometry import BBox, Point
from repro.spatial.rtree import RTree
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore

keys = st.integers(0, 500)
values = st.integers(-1000, 1000)
coords = st.floats(0, 1000, allow_nan=False, allow_infinity=False)


class BPlusTreeMachine(RuleBasedStateMachine):
    """B+-tree vs dict, with range and floor cross-checks."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[int, int] = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(low=keys, high=keys)
    def range_query(self, low, high):
        got = [(k, v) for k, v in self.tree.range(low, high)]
        expected = sorted(
            (k, v) for k, v in self.model.items() if low <= k <= high
        )
        assert got == expected

    @rule(probe=keys)
    def floor_query(self, probe):
        eligible = [k for k in self.model if k <= probe]
        found = self.tree.floor(probe)
        if eligible:
            best = max(eligible)
            assert found == (best, self.model[best])
        else:
            assert found is None

    @invariant()
    def structurally_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


class RTreeMachine(RuleBasedStateMachine):
    """R-tree vs list, with window query cross-checks."""

    def __init__(self):
        super().__init__()
        self.tree = RTree(max_entries=4)
        self.model: list[tuple[BBox, int]] = []
        self.counter = 0

    @rule(x=coords, y=coords, w=st.floats(0.1, 50), h=st.floats(0.1, 50))
    def insert(self, x, y, w, h):
        box = BBox(x, y, x + w, y + h)
        self.tree.insert(box, self.counter)
        self.model.append((box, self.counter))
        self.counter += 1

    @rule(x=coords, y=coords, w=st.floats(1, 400), h=st.floats(1, 400))
    def window_query(self, x, y, w, h):
        window = BBox(x, y, x + w, y + h)
        expected = sorted(i for box, i in self.model if box.intersects(window))
        assert sorted(self.tree.search(window)) == expected

    @rule(x=coords, y=coords)
    def nearest_query(self, x, y):
        if not self.model:
            return
        probe = Point(x, y)
        got = self.tree.nearest(probe, k=1)[0]
        best = min(self.model, key=lambda p: p[0].distance_to_point(probe))
        got_box = next(box for box, i in self.model if i == got)
        assert got_box.distance_to_point(probe) == pytest.approx(
            best[0].distance_to_point(probe)
        )

    @invariant()
    def structurally_sound(self):
        if self.model:
            self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


class PageStoreMachine(RuleBasedStateMachine):
    """Append/read records through a small pool; payloads never corrupt."""

    def __init__(self):
        super().__init__()
        self.disk = SimulatedDisk(page_size=32)
        self.store = PageStore(self.disk)
        self.pool = BufferPool(self.disk, capacity=4)
        self.records: list[tuple[object, bytes]] = []

    @rule(payload=st.binary(min_size=0, max_size=120))
    def append(self, payload):
        pointer = self.store.append(payload)
        self.records.append((pointer, payload))

    @rule(data=st.data())
    def read_back(self, data):
        if not self.records:
            return
        index = data.draw(st.integers(0, len(self.records) - 1))
        pointer, payload = self.records[index]
        assert self.store.read(pointer, pool=self.pool) == payload

    @rule(data=st.data())
    def read_back_without_pool(self, data):
        if not self.records:
            return
        index = data.draw(st.integers(0, len(self.records) - 1))
        pointer, payload = self.records[index]
        assert self.store.read(pointer) == payload


TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)
TestPageStoreStateful = PageStoreMachine.TestCase
TestPageStoreStateful.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
