"""Tests for the ReachabilityEngine façade."""

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery, QueryCost, QueryResult, SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import SECONDS_PER_DAY, day_time

CENTER = Point(0.0, 0.0)
T = day_time(11)


class TestQueryValidation:
    def test_squery_validation(self):
        with pytest.raises(ValueError):
            SQuery(CENTER, -1.0, 600, 0.2)
        with pytest.raises(ValueError):
            SQuery(CENTER, float(SECONDS_PER_DAY), 600, 0.2)
        with pytest.raises(ValueError):
            SQuery(CENTER, 0.0, 0, 0.2)
        with pytest.raises(ValueError):
            SQuery(CENTER, 0.0, 600, 0.0)
        with pytest.raises(ValueError):
            SQuery(CENTER, 0.0, 600, 1.5)

    def test_mquery_validation(self):
        with pytest.raises(ValueError):
            MQuery((), 0.0, 600, 0.2)
        q = MQuery((CENTER, Point(1, 1)), 0.0, 600, 0.2)
        subs = q.as_s_queries()
        assert len(subs) == 2
        assert subs[0].location == CENTER
        assert subs[0].prob == 0.2


class TestEngineBasics:
    def test_unknown_algorithm_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.s_query(SQuery(CENTER, T, 600, 0.2), algorithm="magic")
        with pytest.raises(ValueError):
            engine.m_query(MQuery((CENTER,), T, 600, 0.2), algorithm="magic")

    def test_index_caching(self, engine):
        assert engine.st_index(300) is engine.st_index(300)
        assert engine.con_index(300) is engine.con_index(300)
        assert engine.st_index(300) is not engine.st_index(600)

    def test_result_fields(self, engine):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        assert isinstance(result, QueryResult)
        assert isinstance(result.cost, QueryCost)
        assert len(result.start_segments) == 1
        assert result.cost.wall_time_s > 0
        assert result.cost.total_cost_ms >= result.cost.wall_time_s * 1e3
        assert result.max_region is not None
        assert result.min_region is not None

    def test_es_has_no_bounding_regions(self, engine):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2), algorithm="es")
        assert result.max_region is None
        assert result.min_region is None

    def test_dead_of_night_far_corner_is_empty(self, engine, test_dataset):
        # A location in the far corner at 03:00 with a tiny window has no
        # trajectory leaving it on any day (or almost none).
        bounds = test_dataset.network.bounds()
        corner = Point(bounds.max_x, bounds.max_y)
        result = engine.s_query(SQuery(corner, day_time(3, 2), 300, 1.0))
        # The engine must not crash; result may legitimately be empty.
        assert isinstance(result.segments, set)

    def test_road_length_consistency(self, engine, test_dataset):
        result = engine.s_query(SQuery(CENTER, T, 600, 0.2))
        length = result.road_length_m(test_dataset.network)
        assert length >= 0
        if result.segments:
            assert length > 0
            # Dedup: summing naively over both carriageways would be ~2x.
            naive = sum(
                test_dataset.network.segment(s).length for s in result.segments
            )
            assert length <= naive

    def test_warm_queries_cheaper(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        cold = engine.s_query(query, warm=False)
        warm = engine.s_query(query, warm=True)
        assert warm.cost.io.page_reads <= cold.cost.io.page_reads

    def test_cold_queries_repeatable_io(self, engine):
        query = SQuery(CENTER, T, 600, 0.2)
        first = engine.s_query(query, warm=False)
        second = engine.s_query(query, warm=False)
        assert first.cost.io.page_reads == second.cost.io.page_reads
        assert first.segments == second.segments

    def test_m_query_cost_aggregates(self, engine):
        query = MQuery((CENTER, Point(1000.0, 500.0)), T, 600, 0.2)
        naive = engine.m_query(query, algorithm="sqmb_tbs_each")
        assert naive.cost.probability_checks > 0
        assert naive.cost.segments_expanded > 0

    def test_delta_t_variants(self, engine):
        for delta_t in (300, 600):
            result = engine.s_query(
                SQuery(CENTER, T, 600, 0.2), delta_t_s=delta_t
            )
            assert isinstance(result.segments, set)

    def test_engine_rejects_nothing_without_build(self, test_dataset):
        fresh = ReachabilityEngine(test_dataset.network, test_dataset.database)
        result = fresh.s_query(SQuery(CENTER, T, 300, 0.2))
        assert isinstance(result.segments, set)
