"""Midnight-semantics regression tests.

Before the fix, Algorithm 1's memoized entry hops *clamped* the slot at
the last slot of the day while the residual-carry expansion *wrapped*
modulo ``num_slots`` — a query near midnight mixed two different speed
models — and the ST-Index silently truncated query windows at
``SECONDS_PER_DAY``.  Time-of-day is cyclic: slots and windows now wrap.
"""

from __future__ import annotations

import pytest

from repro.core.con_index import ConnectionIndex
from repro.core.probability import ProbabilityEstimator
from repro.core.sqmb import sqmb_bounding_region
from repro.core.st_index import STIndex
from repro.network.generator import grid_city
from repro.trajectory.model import (
    SECONDS_PER_DAY,
    MatchedTrajectory,
    SegmentVisit,
    day_time,
)
from repro.trajectory.store import TrajectoryDatabase


@pytest.fixture()
def network():
    return grid_city(rows=4, cols=4, spacing=600.0, primary_every=0, seed=3)


def corridor(network, length=6):
    """A deterministic successor chain from segment 0."""
    path = [0]
    while len(path) < length:
        path.append(network.successors(path[-1])[0])
    return path


class TestConIndexSlotWrap:
    def test_slot_of_wraps_modulo_day(self, network):
        db = TrajectoryDatabase(num_taxis=1, num_days=1)
        db.finalize()
        con = ConnectionIndex(network, db, 300)
        assert con.slot_of(SECONDS_PER_DAY + 100) == con.slot_of(100)
        assert con.slot_of(SECONDS_PER_DAY) == 0
        assert con.slot_of(-60) == con.slot_of(SECONDS_PER_DAY - 60)

    def test_entry_hops_wrap_into_next_day(self, network):
        """A query whose hops cross midnight must use the *first* slots of
        the day for the post-midnight hops, not the clamped last slot.

        Hour 23 observations exist on the corridor's first segments only;
        hour 0 observations cover the whole corridor at high speed.  With
        wrap-around, the second Δt hop (past midnight) runs under the
        hour-0 speed model and reaches the far end of the corridor; the
        clamped pre-fix behaviour stayed in the data-starved hour-23 model.
        """
        route = corridor(network)
        db = TrajectoryDatabase(num_taxis=2, num_days=1)
        t_late = SECONDS_PER_DAY - 200.0
        # Hour 23: only the first two corridor segments ever observed, slow.
        db.add(
            MatchedTrajectory(
                0, 0, 0,
                [SegmentVisit(sid, t_late + i, 2.0) for i, sid in enumerate(route[:2])],
            )
        )
        # Hour 0: the whole corridor observed fast.
        db.add(
            MatchedTrajectory(
                1, 1, 0,
                [SegmentVisit(sid, 100.0 + i, 12.0) for i, sid in enumerate(route)],
            )
        )
        db.finalize()
        con = ConnectionIndex(network, db, 300)
        start_time = SECONDS_PER_DAY - 300.0  # the day's last 5-min slot
        region = sqmb_bounding_region(con, route[0], start_time, 600.0, "far")
        # Two hops: slot 287 (hour 23) then wrapped slot 0 (hour 0).  At
        # 12 m/s a 600 m segment costs 50 s, so the second hop sweeps the
        # whole corridor.
        assert set(route) <= region.cover

    def test_region_cache_key_identical_across_wrap(self, network):
        """slot_of(T) for T just past midnight equals slot_of(T mod day),
        so bounding regions stay shareable across the wrap."""
        db = TrajectoryDatabase(num_taxis=1, num_days=1)
        db.finalize()
        con = ConnectionIndex(network, db, 300)
        assert con.slot_of(SECONDS_PER_DAY + 150.0) == con.slot_of(150.0)


class TestSTIndexWindowWrap:
    def _db_with_visits(self, network, visits):
        db = TrajectoryDatabase(num_taxis=4, num_days=2)
        for trajectory_id, (date, segment_id, second) in enumerate(visits):
            db.add(
                MatchedTrajectory(
                    trajectory_id, trajectory_id, date,
                    [SegmentVisit(segment_id, second, 5.0)],
                )
            )
        db.finalize()
        return db

    def test_window_crossing_midnight_sees_both_sides(self, network):
        db = self._db_with_visits(
            network,
            [
                (0, 5, SECONDS_PER_DAY - 50.0),  # late-night visit
                (0, 5, 20.0),  # early-morning visit (same date)
                (1, 5, 7000.0),  # unrelated mid-day visit
            ],
        )
        index = STIndex(network, 300)
        index.build(db)
        window = index.trajectories_in_window(
            5, SECONDS_PER_DAY - 100.0, SECONDS_PER_DAY + 100.0
        )
        assert window == {0: {0, 1}}

    def test_wrapped_window_reentering_start_slot_yields_no_duplicates(
        self, network
    ):
        index = STIndex(network, 300)
        # (100, day+50) wraps and re-enters slot 0, which contains the
        # window start; each overlapped slot must appear exactly once.
        slots = index.slots_in_window(100.0, SECONDS_PER_DAY + 50.0)
        assert len(slots) == len(set(slots)) == index.num_slots

    def test_window_spanning_full_day_sees_everything(self, network):
        db = self._db_with_visits(
            network, [(0, 5, 100.0), (0, 5, 40000.0), (1, 5, 80000.0)]
        )
        index = STIndex(network, 300)
        index.build(db)
        window = index.trajectories_in_window(5, 500.0, 500.0 + SECONDS_PER_DAY)
        assert window == {0: {0, 1}, 1: {2}}

    def test_probability_window_crosses_midnight(self, network):
        """A trajectory reaching the target just after midnight counts for
        a query that starts before midnight (it was truncated away)."""
        route = corridor(network)
        db = TrajectoryDatabase(num_taxis=1, num_days=1)
        db.add(
            MatchedTrajectory(
                0, 0, 0,
                [
                    SegmentVisit(route[0], SECONDS_PER_DAY - 250.0, 6.0),
                    SegmentVisit(route[2], 100.0, 6.0),  # after the wrap
                ],
            )
        )
        db.finalize()
        index = STIndex(network, 300)
        index.build(db)
        estimator = ProbabilityEstimator(
            index, route[0], SECONDS_PER_DAY - 300.0, 600.0, db.num_days
        )
        assert estimator.start_days == 1
        assert estimator.probability(route[2]) == pytest.approx(1.0)
